//! Netlist-backed monolithic-vs-modular experiments.
//!
//! This is the live pipeline behind Tables 1 and 2: take a structural
//! SOC (cores + wiring, from `modsoc-circuitgen`), run ATPG on every
//! core stand-alone, run ATPG once more on the flattened monolithic
//! netlist, and compare the measured test data volumes. The paper's
//! Equation 2 claim (`T_mono ≥ max_i T_i`, observed strictly greater)
//! falls out of the measured pattern counts.
//!
//! Because the paper's whole point is that the per-core ATPG problems
//! are *independent*, the modular phase dispatches them across a
//! [`WorkerPool`] ([`ExperimentOptions::jobs`]) and merges the
//! [`CoreMeasurement`]s in core-index order — reports are byte-identical
//! to the sequential run at any job count.

use std::sync::Arc;

use modsoc_atpg::{Atpg, AtpgOptions, AtpgResult};
use modsoc_circuitgen::SocNetlist;
use modsoc_metrics::{MetricsSink, NullSink, Phase, PhaseTimer};
use modsoc_netlist::Circuit;
use modsoc_soc::{CoreSpec, Soc};
use modsoc_store::ResultStore;

use crate::analysis::SocTdvAnalysis;
use crate::error::AnalysisError;
use crate::parallel::WorkerPool;
use crate::runctl::{
    guard_result, Completion, CoreFailure, CoreOutcome, CoreOutcomeKind, RunBudget,
};
use crate::tdv::TdvOptions;

/// Options for a netlist-backed experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// ATPG engine configuration (same settings for per-core and
    /// monolithic runs, mirroring the paper's "identical parameters").
    pub atpg: AtpgOptions,
    /// TDV accounting options.
    pub tdv: TdvOptions,
    /// Pattern count charged to the top-level glue core's ExTest
    /// (interconnect test). The paper measured 2 for SOC1/SOC2.
    pub glue_patterns: u64,
    /// Worker threads for the per-core (modular) phase: each core's ATPG
    /// is an independent job on the pool. `0` means all available
    /// hardware threads; `1` (the default) runs sequentially. Any value
    /// produces identical reports — the merge is order-preserving.
    pub jobs: usize,
    /// In the guarded entry points: as soon as one core fails or trips
    /// the budget, raise the budget's cross-thread cancel flag so
    /// in-flight sibling cores (and the monolithic phase) stop at their
    /// next poll instead of running to completion. The run still returns
    /// a [`Completion`] with one outcome per core. Which siblings finish
    /// before observing the flag is scheduling-dependent, so fail-fast
    /// runs trade the determinism guarantee for latency.
    pub fail_fast: bool,
    /// Run the flattened monolithic ATPG phase (default). When `false`,
    /// the accounting falls back to the Equation 2 optimistic bound
    /// `T_mono = max_i T_i` and no `"<monolithic>"` outcome row is
    /// emitted — the modular-only mode used by the `--jobs` scaling
    /// bench, where the serial monolithic run would drown the signal.
    pub monolithic: bool,
    /// Content-addressed result store (`--store <dir>`): every engine
    /// run — per-core and monolithic — is fetched from the store when a
    /// complete result for the same `(circuit, options)` content address
    /// exists, and written back after a cold computation. `None` (the
    /// default) computes everything in-process.
    pub store: Option<Arc<ResultStore>>,
    /// Whether store lookups are performed (`false` = `--no-store-read`):
    /// results are recomputed and rewritten, refreshing suspect entries.
    pub store_read: bool,
}

impl Default for ExperimentOptions {
    fn default() -> ExperimentOptions {
        ExperimentOptions {
            atpg: AtpgOptions::default(),
            tdv: TdvOptions::default(),
            glue_patterns: 0,
            jobs: 1,
            fail_fast: false,
            monolithic: true,
            store: None,
            store_read: true,
        }
    }
}

impl ExperimentOptions {
    /// The configuration used by the Table 1/2 regenerations: paper
    /// accounting (chip pins excluded at the top) and 2 glue patterns.
    #[must_use]
    pub fn paper_tables_1_2() -> ExperimentOptions {
        ExperimentOptions {
            tdv: TdvOptions::tables_1_2(),
            glue_patterns: 2,
            ..ExperimentOptions::default()
        }
    }

    /// Set the worker count for the per-core phase (`0` = auto).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> ExperimentOptions {
        self.jobs = jobs;
        self
    }

    /// Enable fail-fast sibling cancellation (guarded entry points).
    #[must_use]
    pub fn with_fail_fast(mut self, fail_fast: bool) -> ExperimentOptions {
        self.fail_fast = fail_fast;
        self
    }

    /// Skip the flattened monolithic phase (Equation 2 bound instead).
    #[must_use]
    pub fn modular_only(mut self) -> ExperimentOptions {
        self.monolithic = false;
        self
    }

    /// Attach a content-addressed result store (see
    /// [`ExperimentOptions::store`]).
    #[must_use]
    pub fn with_store(mut self, store: Arc<ResultStore>) -> ExperimentOptions {
        self.store = Some(store);
        self
    }

    /// Enable or disable store lookups (see
    /// [`ExperimentOptions::store_read`]).
    #[must_use]
    pub fn with_store_read(mut self, read: bool) -> ExperimentOptions {
        self.store_read = read;
        self
    }

    /// Stable fingerprint of every field that influences *result bytes*.
    ///
    /// Two option sets with equal fingerprints produce byte-identical
    /// reports for the same unit, so work keyed on different content
    /// addresses but equal fingerprints may share one dispatch (the
    /// serve layer's batch-compatibility test). Excluded by
    /// construction: `jobs` (order-preserving merge), `fail_fast`
    /// (latency-only), and the store fields (caching never changes
    /// bytes).
    #[must_use]
    pub fn fingerprint(&self) -> String {
        format!(
            "atpg={};tdv={:?};glue={};mono={}",
            modsoc_atpg::options_fingerprint(&self.atpg),
            self.tdv,
            self.glue_patterns,
            u8::from(self.monolithic),
        )
    }

    /// Run one engine job through the configured store (cache fetch +
    /// write-back), or directly when no store is attached. The single
    /// seam every experiment entry point funnels engine runs through, so
    /// `--store` behaves identically for per-core, monolithic, plain,
    /// guarded, and metered paths.
    pub(crate) fn run_engine(
        &self,
        engine: &Atpg,
        circuit: &Circuit,
        budget: &RunBudget,
    ) -> Result<AtpgResult, AnalysisError> {
        match &self.store {
            Some(store) => engine
                .run_budgeted_stored(circuit, budget, store, self.store_read)
                .map_err(AnalysisError::from),
            None => engine
                .run_budgeted(circuit, budget)
                .map_err(AnalysisError::from),
        }
    }
}

/// Per-core measurement from the modular phase.
#[derive(Debug, Clone)]
pub struct CoreMeasurement {
    /// Core name.
    pub name: String,
    /// Measured ATPG pattern count.
    pub patterns: u64,
    /// Fault coverage over collapsed classes.
    pub fault_coverage: f64,
    /// Final ATPG statistics.
    pub stats: modsoc_atpg::AtpgStats,
}

/// The outcome of a full experiment.
#[derive(Debug, Clone)]
pub struct SocExperiment {
    /// The SOC parameter model assembled from measurements.
    pub soc: Soc,
    /// The TDV analysis with the *measured* monolithic pattern count.
    pub analysis: SocTdvAnalysis,
    /// Per-core measurements, in core order.
    pub cores: Vec<CoreMeasurement>,
    /// Measured monolithic pattern count (flattened-design ATPG), or the
    /// Equation 2 optimistic bound when the monolithic phase was skipped
    /// or failed.
    pub t_mono: u64,
    /// Monolithic-run fault coverage (0 when the phase did not run).
    pub mono_coverage: f64,
    /// Whether Equation 2 held strictly (`T_mono > max_i T_i`), the
    /// paper's observation on both SOCs.
    pub eq2_strict: bool,
}

/// Dispatch one ATPG job per core across the pool, preserving core-index
/// order in the returned vector.
fn map_cores<T: Send>(
    netlist: &SocNetlist,
    jobs: usize,
    run_core: impl Fn(usize, &Circuit) -> T + Sync,
) -> Vec<T> {
    WorkerPool::new(jobs.max(1)).map(netlist.cores(), run_core)
}

/// Run the full modular-vs-monolithic experiment on a structural SOC.
///
/// # Errors
///
/// Propagates netlist flattening and ATPG errors (the error of the
/// lowest-indexed failing core, matching the sequential run).
pub fn run_soc_experiment(
    netlist: &SocNetlist,
    options: &ExperimentOptions,
) -> Result<SocExperiment, AnalysisError> {
    let engine = Atpg::new(options.atpg.clone());
    let budget = RunBudget::unlimited();

    // Modular phase: every core stand-alone, dispatched across the pool.
    let results = map_cores(netlist, options.jobs, |_, circuit| {
        options.run_engine(&engine, circuit, &budget)
    });

    let mut soc = Soc::new(netlist.name());
    let mut cores = Vec::with_capacity(netlist.cores().len());
    let mut children = Vec::with_capacity(netlist.cores().len());
    for (circuit, result) in netlist.cores().iter().zip(results) {
        let result = result?;
        let patterns = result.pattern_count() as u64;
        cores.push(CoreMeasurement {
            name: circuit.name().to_string(),
            patterns,
            fault_coverage: result.fault_coverage(),
            stats: result.stats,
        });
        let id = soc.add_core(CoreSpec::leaf(
            circuit.name(),
            circuit.input_count() as u64,
            circuit.output_count() as u64,
            0,
            circuit.dff_count() as u64,
            patterns,
        ))?;
        children.push(id);
    }
    soc.add_core(CoreSpec::parent(
        "top",
        netlist.chip_input_count() as u64,
        netlist.chip_output_count() as u64,
        0,
        0,
        options.glue_patterns,
        children,
    ))?;

    // Monolithic phase: flatten and re-run ATPG.
    let max_core = soc.max_core_patterns();
    let (t_mono_raw, mono_coverage) = if options.monolithic {
        let flat = netlist.flatten()?;
        let mono = options.run_engine(&engine, &flat, &budget)?;
        (mono.pattern_count() as u64, mono.fault_coverage())
    } else {
        (max_core, 0.0)
    };
    let eq2_strict = t_mono_raw > max_core;
    // Equation 2 guarantees T_mono ≥ max core count for a *consistent*
    // compaction; independent ATPG runs can rarely dip below, so clamp
    // for the accounting (and report the raw value via `t_mono`).
    let t_mono = t_mono_raw.max(max_core);

    let analysis = SocTdvAnalysis::compute_with_measured_tmono(&soc, &options.tdv, t_mono)?;
    Ok(SocExperiment {
        soc,
        analysis,
        cores,
        t_mono: t_mono_raw,
        mono_coverage,
        eq2_strict,
    })
}

/// Run the modular-vs-monolithic experiment under a [`RunBudget`] with
/// per-core panic isolation.
///
/// Each core's ATPG runs guarded on the worker pool
/// ([`ExperimentOptions::jobs`]): a panic or typed error in one core
/// becomes a [`CoreOutcome`] diagnostic while the remaining cores still
/// produce their rows; a tripped budget yields each core's partial
/// pattern set. Measurements are merged in core-index order, so the
/// report is byte-identical to the sequential run at any job count. With
/// [`ExperimentOptions::fail_fast`], the first core to fail or trip the
/// budget raises the budget's cross-thread cancel flag and in-flight
/// siblings stop at their next poll. The flattened monolithic run is
/// guarded the same way (pseudo-core `"<monolithic>"`) — when it fails
/// or is skipped, the accounting falls back to the Equation 2 optimistic
/// bound `T_mono = max_i T_i`.
///
/// # Errors
///
/// Errors only when *nothing* analyzable remains: every core failed, or
/// the assembled SOC model itself is invalid. Individual core failures
/// and budget exhaustion are reported in the [`Completion`], not as
/// errors.
pub fn run_soc_experiment_guarded(
    netlist: &SocNetlist,
    options: &ExperimentOptions,
    budget: &RunBudget,
) -> Result<Completion<SocExperiment>, AnalysisError> {
    let engine = Atpg::new(options.atpg.clone());
    run_soc_experiment_guarded_with(netlist, options, budget, |_, circuit| {
        options.run_engine(&engine, circuit, budget)
    })
}

/// [`run_soc_experiment_guarded`] with a caller-supplied per-core ATPG
/// function — the chaos/fault-injection seam. `run_core(i, circuit)` is
/// invoked once per core on a pool worker; panics and errors it raises
/// are contained to that core's [`CoreOutcome`] exactly like engine
/// failures, which is how the test suite injects deterministic per-core
/// panics and verifies `jobs=1`/`jobs=4` report equality.
///
/// # Errors
///
/// As [`run_soc_experiment_guarded`].
pub fn run_soc_experiment_guarded_with<F>(
    netlist: &SocNetlist,
    options: &ExperimentOptions,
    budget: &RunBudget,
    run_core: F,
) -> Result<Completion<SocExperiment>, AnalysisError>
where
    F: Fn(usize, &Circuit) -> Result<AtpgResult, AnalysisError> + Sync,
{
    let engine = Atpg::new(options.atpg.clone());
    run_soc_experiment_guarded_full(netlist, options, budget, &NullSink, run_core, |flat| {
        options.run_engine(&engine, flat, budget)
    })
}

/// The fully-injectable guarded pipeline behind
/// [`run_soc_experiment_guarded_with`]: both the per-core and the
/// monolithic ATPG functions are caller-supplied, and pipeline-level
/// observability (modular dispatch / flatten / monolithic / TDV analysis
/// phase timings, pool utilization) reports into `sink`. This is the
/// seam the metered experiment runner
/// ([`crate::metrics::run_soc_experiment_metered`]) uses to give every
/// core its own recording sink while keeping one pipeline sink for the
/// dispatch phases. Results are byte-identical to
/// [`run_soc_experiment_guarded_with`] for the same closures.
///
/// # Errors
///
/// As [`run_soc_experiment_guarded`].
pub fn run_soc_experiment_guarded_full<F, G>(
    netlist: &SocNetlist,
    options: &ExperimentOptions,
    budget: &RunBudget,
    sink: &dyn MetricsSink,
    run_core: F,
    run_mono: G,
) -> Result<Completion<SocExperiment>, AnalysisError>
where
    F: Fn(usize, &Circuit) -> Result<AtpgResult, AnalysisError> + Sync,
    G: FnOnce(&Circuit) -> Result<AtpgResult, AnalysisError>,
{
    let mut exhausted = None;
    let mut outcomes: Vec<CoreOutcome> = Vec::new();

    // Modular phase: every core stand-alone, each isolated, dispatched
    // across the pool. The jobs only touch per-core state (plus the
    // budget's atomics), so the merge below sees exactly what a
    // sequential loop would have seen.
    let dispatch_timer = PhaseTimer::start(sink, Phase::ModularDispatch);
    let results: Vec<Result<AtpgResult, CoreFailure>> = WorkerPool::new(options.jobs.max(1))
        .map_with_sink(netlist.cores(), sink, |i, circuit| {
            let result = guard_result(|| run_core(i, circuit));
            if options.fail_fast {
                let tripped = match &result {
                    Ok(r) => r.exhausted.is_some(),
                    Err(_) => true,
                };
                if tripped {
                    budget.cancel();
                }
            }
            result
        });
    drop(dispatch_timer);

    // Order-preserving merge, in core-index order.
    let mut soc = Soc::new(netlist.name());
    let mut cores = Vec::with_capacity(netlist.cores().len());
    let mut children = Vec::with_capacity(netlist.cores().len());
    for (circuit, core_result) in netlist.cores().iter().zip(results) {
        let name = circuit.name().to_string();
        match core_result {
            Ok(result) => {
                let patterns = result.pattern_count() as u64;
                let kind = match &result.exhausted {
                    Some(e) => {
                        if exhausted.is_none() {
                            exhausted = Some(e.clone());
                        }
                        CoreOutcomeKind::Partial(e.clone())
                    }
                    None => CoreOutcomeKind::Complete,
                };
                outcomes.push(CoreOutcome {
                    core: name.clone(),
                    kind,
                    patterns: Some(patterns),
                    fault_coverage: Some(result.fault_coverage()),
                });
                cores.push(CoreMeasurement {
                    name,
                    patterns,
                    fault_coverage: result.fault_coverage(),
                    stats: result.stats,
                });
                let id = soc.add_core(CoreSpec::leaf(
                    circuit.name(),
                    circuit.input_count() as u64,
                    circuit.output_count() as u64,
                    0,
                    circuit.dff_count() as u64,
                    patterns,
                ))?;
                children.push(id);
            }
            Err(failure) => outcomes.push(CoreOutcome {
                core: name,
                kind: CoreOutcomeKind::Failed(failure),
                patterns: None,
                fault_coverage: None,
            }),
        }
    }
    if children.is_empty() {
        // Nothing survived; there is no analyzable SOC model.
        return Err(AnalysisError::Soc(modsoc_soc::SocError::Empty));
    }
    soc.add_core(CoreSpec::parent(
        "top",
        netlist.chip_input_count() as u64,
        netlist.chip_output_count() as u64,
        0,
        0,
        options.glue_patterns,
        children,
    ))?;

    // Monolithic phase, isolated the same way.
    let max_core = soc.max_core_patterns();
    let (t_mono_raw, mono_coverage) = if options.monolithic {
        let mono = guard_result(|| {
            let flat = {
                let _t = PhaseTimer::start(sink, Phase::Flatten);
                netlist.flatten()?
            };
            let _t = PhaseTimer::start(sink, Phase::MonolithicAtpg);
            run_mono(&flat)
        });
        match mono {
            Ok(result) => {
                let patterns = result.pattern_count() as u64;
                let kind = match &result.exhausted {
                    Some(e) => {
                        if exhausted.is_none() {
                            exhausted = Some(e.clone());
                        }
                        CoreOutcomeKind::Partial(e.clone())
                    }
                    None => CoreOutcomeKind::Complete,
                };
                outcomes.push(CoreOutcome {
                    core: "<monolithic>".to_string(),
                    kind,
                    patterns: Some(patterns),
                    fault_coverage: Some(result.fault_coverage()),
                });
                (patterns, result.fault_coverage())
            }
            Err(failure) => {
                outcomes.push(CoreOutcome {
                    core: "<monolithic>".to_string(),
                    kind: CoreOutcomeKind::Failed(failure),
                    patterns: None,
                    fault_coverage: None,
                });
                // Fall back to the Equation 2 optimistic bound.
                (max_core, 0.0)
            }
        }
    } else {
        (max_core, 0.0)
    };
    let eq2_strict = t_mono_raw > max_core;
    let t_mono = t_mono_raw.max(max_core);

    let analysis = {
        let _t = PhaseTimer::start(sink, Phase::TdvAnalysis);
        SocTdvAnalysis::compute_with_measured_tmono(&soc, &options.tdv, t_mono)?
    };
    Ok(Completion {
        result: SocExperiment {
            soc,
            analysis,
            cores,
            t_mono: t_mono_raw,
            mono_coverage,
            eq2_strict,
        },
        exhausted,
        per_core_outcomes: outcomes,
    })
}

/// Run the modular-vs-monolithic experiment with **transition-delay**
/// (launch-on-capture) pattern counts instead of stuck-at — the at-speed
/// extension of the paper's Tables 1–2 methodology. Per-core TDF
/// generation fans out across the pool like the stuck-at path.
///
/// # Errors
///
/// Propagates netlist flattening and test-generation errors.
pub fn run_soc_experiment_tdf(
    netlist: &SocNetlist,
    backtrack_limit: u32,
    options: &ExperimentOptions,
) -> Result<SocExperiment, AnalysisError> {
    use modsoc_atpg::tdf::run_tdf_atpg;

    let results = map_cores(netlist, options.jobs, |_, circuit| {
        run_tdf_atpg(circuit, backtrack_limit)
    });

    let mut soc = Soc::new(format!("{}.atspeed", netlist.name()));
    let mut cores = Vec::with_capacity(netlist.cores().len());
    let mut children = Vec::with_capacity(netlist.cores().len());
    for (circuit, result) in netlist.cores().iter().zip(results) {
        let result = result?;
        let patterns = result.patterns.len() as u64;
        cores.push(CoreMeasurement {
            name: circuit.name().to_string(),
            patterns,
            fault_coverage: result.coverage(),
            stats: modsoc_atpg::AtpgStats {
                collapsed_faults: result.total,
                detected: result.detected,
                aborted: result.aborted,
                final_patterns: result.patterns.len(),
                ..modsoc_atpg::AtpgStats::default()
            },
        });
        let id = soc.add_core(CoreSpec::leaf(
            circuit.name(),
            circuit.input_count() as u64,
            circuit.output_count() as u64,
            0,
            circuit.dff_count() as u64,
            patterns,
        ))?;
        children.push(id);
    }
    soc.add_core(CoreSpec::parent(
        "top",
        netlist.chip_input_count() as u64,
        netlist.chip_output_count() as u64,
        0,
        0,
        options.glue_patterns,
        children,
    ))?;

    let max_core = soc.max_core_patterns();
    let (t_mono_raw, mono_coverage) = if options.monolithic {
        let flat = netlist.flatten()?;
        let mono = run_tdf_atpg(&flat, backtrack_limit)?;
        (mono.patterns.len() as u64, mono.coverage())
    } else {
        (max_core, 0.0)
    };
    let eq2_strict = t_mono_raw > max_core;
    let t_mono = t_mono_raw.max(max_core);

    let analysis = SocTdvAnalysis::compute_with_measured_tmono(&soc, &options.tdv, t_mono)?;
    Ok(SocExperiment {
        soc,
        analysis,
        cores,
        t_mono: t_mono_raw,
        mono_coverage,
        eq2_strict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsoc_circuitgen::soc::mini_soc;

    #[test]
    fn mini_soc_experiment_end_to_end() {
        let netlist = mini_soc(7).unwrap();
        let exp = run_soc_experiment(&netlist, &ExperimentOptions::paper_tables_1_2()).unwrap();
        assert_eq!(exp.cores.len(), 2);
        for c in &exp.cores {
            assert!(c.fault_coverage > 0.9, "{}: {}", c.name, c.fault_coverage);
            assert!(c.patterns > 0);
        }
        assert!(exp.mono_coverage > 0.9);
        // The analysis used a t_mono at least the per-core max.
        assert!(exp.analysis.t_mono() >= exp.soc.max_core_patterns());
        assert!(exp.analysis.t_mono_is_measured());
        // Modular TDV should beat monolithic on this SOC.
        assert!(exp.analysis.reduction_ratio() > 1.0);
    }

    #[test]
    fn experiment_is_deterministic() {
        let netlist = mini_soc(7).unwrap();
        let o = ExperimentOptions::paper_tables_1_2();
        let a = run_soc_experiment(&netlist, &o).unwrap();
        let b = run_soc_experiment(&netlist, &o).unwrap();
        assert_eq!(a.t_mono, b.t_mono);
        assert_eq!(
            a.cores.iter().map(|c| c.patterns).collect::<Vec<_>>(),
            b.cores.iter().map(|c| c.patterns).collect::<Vec<_>>()
        );
    }

    #[test]
    fn parallel_experiment_matches_sequential() {
        let netlist = mini_soc(7).unwrap();
        let sequential =
            run_soc_experiment(&netlist, &ExperimentOptions::paper_tables_1_2()).unwrap();
        for jobs in [0, 2, 4] {
            let parallel = run_soc_experiment(
                &netlist,
                &ExperimentOptions::paper_tables_1_2().with_jobs(jobs),
            )
            .unwrap();
            assert_eq!(parallel.t_mono, sequential.t_mono, "jobs={jobs}");
            assert_eq!(parallel.eq2_strict, sequential.eq2_strict);
            assert_eq!(
                parallel
                    .cores
                    .iter()
                    .map(|c| c.patterns)
                    .collect::<Vec<_>>(),
                sequential
                    .cores
                    .iter()
                    .map(|c| c.patterns)
                    .collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn modular_only_uses_equation_2_bound() {
        let netlist = mini_soc(7).unwrap();
        let exp = run_soc_experiment(
            &netlist,
            &ExperimentOptions::paper_tables_1_2().modular_only(),
        )
        .unwrap();
        assert_eq!(exp.t_mono, exp.soc.max_core_patterns());
        assert!(!exp.eq2_strict);
        assert_eq!(exp.mono_coverage, 0.0);
        // And the guarded path skips the pseudo-stage row entirely.
        let guarded = run_soc_experiment_guarded(
            &netlist,
            &ExperimentOptions::paper_tables_1_2().modular_only(),
            &RunBudget::unlimited(),
        )
        .unwrap();
        assert!(guarded
            .per_core_outcomes
            .iter()
            .all(|o| o.core != "<monolithic>"));
    }

    #[test]
    fn tdf_experiment_end_to_end() {
        let netlist = mini_soc(7).unwrap();
        let exp =
            run_soc_experiment_tdf(&netlist, 200, &ExperimentOptions::paper_tables_1_2()).unwrap();
        assert_eq!(exp.cores.len(), 2);
        for c in &exp.cores {
            assert!(c.patterns > 0, "{}", c.name);
            assert!(c.fault_coverage > 0.5, "{}: {}", c.name, c.fault_coverage);
        }
        assert!(exp.analysis.t_mono() >= exp.soc.max_core_patterns());
        // Equation 6 balances on the at-speed accounting too.
        assert_eq!(
            exp.analysis.monolithic().total() + exp.analysis.penalty() - exp.analysis.benefit(),
            exp.analysis.modular().total()
        );
    }

    #[test]
    fn soc_model_mirrors_netlist_interface() {
        let netlist = mini_soc(3).unwrap();
        let exp = run_soc_experiment(&netlist, &ExperimentOptions::paper_tables_1_2()).unwrap();
        let top = exp.soc.find("top").unwrap();
        let t = exp.soc.core(top);
        assert_eq!(t.inputs, netlist.chip_input_count() as u64);
        assert_eq!(t.outputs, netlist.chip_output_count() as u64);
        assert_eq!(
            exp.soc.total_scan_cells(),
            netlist.total_scan_cells() as u64
        );
    }

    #[test]
    fn injected_core_panic_is_isolated_at_any_job_count() {
        let netlist = mini_soc(7).unwrap();
        let engine = Atpg::new(AtpgOptions::default());
        for jobs in [1, 4] {
            let options = ExperimentOptions::paper_tables_1_2().with_jobs(jobs);
            let completion = run_soc_experiment_guarded_with(
                &netlist,
                &options,
                &RunBudget::unlimited(),
                |i, circuit| {
                    if i == 0 {
                        panic!("injected core panic");
                    }
                    engine
                        .run_budgeted(circuit, &RunBudget::unlimited())
                        .map_err(AnalysisError::from)
                },
            )
            .unwrap();
            let failed = completion.failed_cores();
            assert_eq!(failed.len(), 1, "jobs={jobs}");
            assert!(matches!(
                &failed[0].kind,
                CoreOutcomeKind::Failed(CoreFailure::Panicked(m)) if m == "injected core panic"
            ));
            assert_eq!(completion.result.cores.len(), 1);
        }
    }

    #[test]
    fn stored_experiment_matches_cold_run_and_skips_recompute() {
        let dir = std::env::temp_dir().join(format!(
            "modsoc_experiment_store_test_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(ResultStore::open(&dir).unwrap());
        let netlist = mini_soc(7).unwrap();
        let baseline =
            run_soc_experiment(&netlist, &ExperimentOptions::paper_tables_1_2()).unwrap();

        let options = ExperimentOptions::paper_tables_1_2().with_store(Arc::clone(&store));
        let cold = run_soc_experiment(&netlist, &options).unwrap();
        // Cold: 2 cores + monolithic, all misses, all written.
        assert_eq!((store.hits(), store.misses(), store.writes()), (0, 3, 3));
        assert_eq!(cold.t_mono, baseline.t_mono);

        for jobs in [1, 4] {
            let warm = run_soc_experiment(&netlist, &options.clone().with_jobs(jobs)).unwrap();
            assert_eq!(warm.t_mono, baseline.t_mono, "jobs={jobs}");
            assert_eq!(
                warm.cores.iter().map(|c| c.patterns).collect::<Vec<_>>(),
                baseline
                    .cores
                    .iter()
                    .map(|c| c.patterns)
                    .collect::<Vec<_>>(),
                "jobs={jobs}"
            );
            assert_eq!(warm.eq2_strict, baseline.eq2_strict);
        }
        // Two warm runs × 3 units each, no further misses or writes.
        assert_eq!((store.hits(), store.misses(), store.writes()), (6, 3, 3));

        // --no-store-read recomputes (no new hits) but refreshes entries.
        let refreshed = run_soc_experiment(&netlist, &options.clone().with_store_read(false));
        assert!(refreshed.is_ok());
        assert_eq!(store.hits(), 6);
        assert_eq!(store.writes(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fail_fast_cancels_in_flight_siblings() {
        let netlist = mini_soc(7).unwrap();
        let options = ExperimentOptions::paper_tables_1_2()
            .with_jobs(1)
            .with_fail_fast(true);
        let budget = RunBudget::unlimited();
        let completion = run_soc_experiment_guarded_with(&netlist, &options, &budget, |i, _| {
            if i == 0 {
                return Err(AnalysisError::Soc(modsoc_soc::SocError::Empty));
            }
            // A healthy sibling: would succeed, but fail-fast has already
            // raised the shared cancel flag by the time it runs (jobs=1
            // ⇒ strictly after core 0).
            assert!(budget.is_cancelled(), "sibling sees the cancel flag");
            Err(AnalysisError::Soc(modsoc_soc::SocError::Empty))
        });
        // Both cores failed ⇒ nothing analyzable remains.
        assert!(completion.is_err());
        assert!(budget.is_cancelled());
    }
}
