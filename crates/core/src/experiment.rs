//! Netlist-backed monolithic-vs-modular experiments.
//!
//! This is the live pipeline behind Tables 1 and 2: take a structural
//! SOC (cores + wiring, from `modsoc-circuitgen`), run ATPG on every
//! core stand-alone, run ATPG once more on the flattened monolithic
//! netlist, and compare the measured test data volumes. The paper's
//! Equation 2 claim (`T_mono ≥ max_i T_i`, observed strictly greater)
//! falls out of the measured pattern counts.

use modsoc_atpg::{Atpg, AtpgOptions};
use modsoc_circuitgen::SocNetlist;
use modsoc_soc::{CoreSpec, Soc};

use crate::analysis::SocTdvAnalysis;
use crate::error::AnalysisError;
use crate::runctl::{guard_result, Completion, CoreOutcome, CoreOutcomeKind, RunBudget};
use crate::tdv::TdvOptions;

/// Options for a netlist-backed experiment.
#[derive(Debug, Clone, Default)]
pub struct ExperimentOptions {
    /// ATPG engine configuration (same settings for per-core and
    /// monolithic runs, mirroring the paper's "identical parameters").
    pub atpg: AtpgOptions,
    /// TDV accounting options.
    pub tdv: TdvOptions,
    /// Pattern count charged to the top-level glue core's ExTest
    /// (interconnect test). The paper measured 2 for SOC1/SOC2.
    pub glue_patterns: u64,
}

impl ExperimentOptions {
    /// The configuration used by the Table 1/2 regenerations: paper
    /// accounting (chip pins excluded at the top) and 2 glue patterns.
    #[must_use]
    pub fn paper_tables_1_2() -> ExperimentOptions {
        ExperimentOptions {
            atpg: AtpgOptions::default(),
            tdv: TdvOptions::tables_1_2(),
            glue_patterns: 2,
        }
    }
}

/// Per-core measurement from the modular phase.
#[derive(Debug, Clone)]
pub struct CoreMeasurement {
    /// Core name.
    pub name: String,
    /// Measured ATPG pattern count.
    pub patterns: u64,
    /// Fault coverage over collapsed classes.
    pub fault_coverage: f64,
    /// Final ATPG statistics.
    pub stats: modsoc_atpg::AtpgStats,
}

/// The outcome of a full experiment.
#[derive(Debug, Clone)]
pub struct SocExperiment {
    /// The SOC parameter model assembled from measurements.
    pub soc: Soc,
    /// The TDV analysis with the *measured* monolithic pattern count.
    pub analysis: SocTdvAnalysis,
    /// Per-core measurements, in core order.
    pub cores: Vec<CoreMeasurement>,
    /// Measured monolithic pattern count (flattened-design ATPG).
    pub t_mono: u64,
    /// Monolithic-run fault coverage.
    pub mono_coverage: f64,
    /// Whether Equation 2 held strictly (`T_mono > max_i T_i`), the
    /// paper's observation on both SOCs.
    pub eq2_strict: bool,
}

/// Run the full modular-vs-monolithic experiment on a structural SOC.
///
/// # Errors
///
/// Propagates netlist flattening and ATPG errors.
pub fn run_soc_experiment(
    netlist: &SocNetlist,
    options: &ExperimentOptions,
) -> Result<SocExperiment, AnalysisError> {
    let engine = Atpg::new(options.atpg.clone());

    // Modular phase: every core stand-alone.
    let mut soc = Soc::new(netlist.name());
    let mut cores = Vec::with_capacity(netlist.cores().len());
    let mut children = Vec::with_capacity(netlist.cores().len());
    for circuit in netlist.cores() {
        let result = engine.run(circuit)?;
        let patterns = result.pattern_count() as u64;
        cores.push(CoreMeasurement {
            name: circuit.name().to_string(),
            patterns,
            fault_coverage: result.fault_coverage(),
            stats: result.stats,
        });
        let id = soc.add_core(CoreSpec::leaf(
            circuit.name(),
            circuit.input_count() as u64,
            circuit.output_count() as u64,
            0,
            circuit.dff_count() as u64,
            patterns,
        ))?;
        children.push(id);
    }
    soc.add_core(CoreSpec::parent(
        "top",
        netlist.chip_input_count() as u64,
        netlist.chip_output_count() as u64,
        0,
        0,
        options.glue_patterns,
        children,
    ))?;

    // Monolithic phase: flatten and re-run ATPG.
    let flat = netlist.flatten()?;
    let mono = engine.run(&flat)?;
    let t_mono_raw = mono.pattern_count() as u64;
    let max_core = soc.max_core_patterns();
    let eq2_strict = t_mono_raw > max_core;
    // Equation 2 guarantees T_mono ≥ max core count for a *consistent*
    // compaction; independent ATPG runs can rarely dip below, so clamp
    // for the accounting (and report the raw value via `t_mono`).
    let t_mono = t_mono_raw.max(max_core);

    let analysis = SocTdvAnalysis::compute_with_measured_tmono(&soc, &options.tdv, t_mono)?;
    Ok(SocExperiment {
        soc,
        analysis,
        cores,
        t_mono: t_mono_raw,
        mono_coverage: mono.fault_coverage(),
        eq2_strict,
    })
}

/// Run the modular-vs-monolithic experiment under a [`RunBudget`] with
/// per-core panic isolation.
///
/// Each core's ATPG runs guarded: a panic or typed error in one core
/// becomes a [`CoreOutcome`] diagnostic while the remaining cores still
/// produce their rows; a tripped budget yields each core's partial
/// pattern set. The flattened monolithic run is guarded the same way
/// (pseudo-core `"<monolithic>"`) — when it fails, the accounting falls
/// back to the Equation 2 optimistic bound `T_mono = max_i T_i`.
///
/// # Errors
///
/// Errors only when *nothing* analyzable remains: every core failed, or
/// the assembled SOC model itself is invalid. Individual core failures
/// and budget exhaustion are reported in the [`Completion`], not as
/// errors.
pub fn run_soc_experiment_guarded(
    netlist: &SocNetlist,
    options: &ExperimentOptions,
    budget: &RunBudget,
) -> Result<Completion<SocExperiment>, AnalysisError> {
    let engine = Atpg::new(options.atpg.clone());
    let mut exhausted = None;
    let mut outcomes: Vec<CoreOutcome> = Vec::new();

    // Modular phase: every core stand-alone, each isolated.
    let mut soc = Soc::new(netlist.name());
    let mut cores = Vec::with_capacity(netlist.cores().len());
    let mut children = Vec::with_capacity(netlist.cores().len());
    for circuit in netlist.cores() {
        let name = circuit.name().to_string();
        match guard_result(|| engine.run_budgeted(circuit, budget)) {
            Ok(result) => {
                let patterns = result.pattern_count() as u64;
                let kind = match &result.exhausted {
                    Some(e) => {
                        if exhausted.is_none() {
                            exhausted = Some(e.clone());
                        }
                        CoreOutcomeKind::Partial(e.clone())
                    }
                    None => CoreOutcomeKind::Complete,
                };
                outcomes.push(CoreOutcome {
                    core: name.clone(),
                    kind,
                    patterns: Some(patterns),
                    fault_coverage: Some(result.fault_coverage()),
                });
                cores.push(CoreMeasurement {
                    name,
                    patterns,
                    fault_coverage: result.fault_coverage(),
                    stats: result.stats,
                });
                let id = soc.add_core(CoreSpec::leaf(
                    circuit.name(),
                    circuit.input_count() as u64,
                    circuit.output_count() as u64,
                    0,
                    circuit.dff_count() as u64,
                    patterns,
                ))?;
                children.push(id);
            }
            Err(failure) => outcomes.push(CoreOutcome {
                core: name,
                kind: CoreOutcomeKind::Failed(failure),
                patterns: None,
                fault_coverage: None,
            }),
        }
    }
    if children.is_empty() {
        // Nothing survived; there is no analyzable SOC model.
        return Err(AnalysisError::Soc(modsoc_soc::SocError::Empty));
    }
    soc.add_core(CoreSpec::parent(
        "top",
        netlist.chip_input_count() as u64,
        netlist.chip_output_count() as u64,
        0,
        0,
        options.glue_patterns,
        children,
    ))?;

    // Monolithic phase, isolated the same way.
    let max_core = soc.max_core_patterns();
    let mono = guard_result(|| {
        let flat = netlist.flatten()?;
        engine
            .run_budgeted(&flat, budget)
            .map_err(AnalysisError::from)
    });
    let (t_mono_raw, mono_coverage) = match mono {
        Ok(result) => {
            let patterns = result.pattern_count() as u64;
            let kind = match &result.exhausted {
                Some(e) => {
                    if exhausted.is_none() {
                        exhausted = Some(e.clone());
                    }
                    CoreOutcomeKind::Partial(e.clone())
                }
                None => CoreOutcomeKind::Complete,
            };
            outcomes.push(CoreOutcome {
                core: "<monolithic>".to_string(),
                kind,
                patterns: Some(patterns),
                fault_coverage: Some(result.fault_coverage()),
            });
            (patterns, result.fault_coverage())
        }
        Err(failure) => {
            outcomes.push(CoreOutcome {
                core: "<monolithic>".to_string(),
                kind: CoreOutcomeKind::Failed(failure),
                patterns: None,
                fault_coverage: None,
            });
            // Fall back to the Equation 2 optimistic bound.
            (max_core, 0.0)
        }
    };
    let eq2_strict = t_mono_raw > max_core;
    let t_mono = t_mono_raw.max(max_core);

    let analysis = SocTdvAnalysis::compute_with_measured_tmono(&soc, &options.tdv, t_mono)?;
    Ok(Completion {
        result: SocExperiment {
            soc,
            analysis,
            cores,
            t_mono: t_mono_raw,
            mono_coverage,
            eq2_strict,
        },
        exhausted,
        per_core_outcomes: outcomes,
    })
}

/// Run the modular-vs-monolithic experiment with **transition-delay**
/// (launch-on-capture) pattern counts instead of stuck-at — the at-speed
/// extension of the paper's Tables 1–2 methodology.
///
/// # Errors
///
/// Propagates netlist flattening and test-generation errors.
pub fn run_soc_experiment_tdf(
    netlist: &SocNetlist,
    backtrack_limit: u32,
    options: &ExperimentOptions,
) -> Result<SocExperiment, AnalysisError> {
    use modsoc_atpg::tdf::run_tdf_atpg;

    let mut soc = Soc::new(format!("{}.atspeed", netlist.name()));
    let mut cores = Vec::with_capacity(netlist.cores().len());
    let mut children = Vec::with_capacity(netlist.cores().len());
    for circuit in netlist.cores() {
        let result = run_tdf_atpg(circuit, backtrack_limit)?;
        let patterns = result.patterns.len() as u64;
        cores.push(CoreMeasurement {
            name: circuit.name().to_string(),
            patterns,
            fault_coverage: result.coverage(),
            stats: modsoc_atpg::AtpgStats {
                collapsed_faults: result.total,
                detected: result.detected,
                aborted: result.aborted,
                final_patterns: result.patterns.len(),
                ..modsoc_atpg::AtpgStats::default()
            },
        });
        let id = soc.add_core(CoreSpec::leaf(
            circuit.name(),
            circuit.input_count() as u64,
            circuit.output_count() as u64,
            0,
            circuit.dff_count() as u64,
            patterns,
        ))?;
        children.push(id);
    }
    soc.add_core(CoreSpec::parent(
        "top",
        netlist.chip_input_count() as u64,
        netlist.chip_output_count() as u64,
        0,
        0,
        options.glue_patterns,
        children,
    ))?;

    let flat = netlist.flatten()?;
    let mono = run_tdf_atpg(&flat, backtrack_limit)?;
    let t_mono_raw = mono.patterns.len() as u64;
    let max_core = soc.max_core_patterns();
    let eq2_strict = t_mono_raw > max_core;
    let t_mono = t_mono_raw.max(max_core);

    let analysis = SocTdvAnalysis::compute_with_measured_tmono(&soc, &options.tdv, t_mono)?;
    Ok(SocExperiment {
        soc,
        analysis,
        cores,
        t_mono: t_mono_raw,
        mono_coverage: mono.coverage(),
        eq2_strict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsoc_circuitgen::soc::mini_soc;

    #[test]
    fn mini_soc_experiment_end_to_end() {
        let netlist = mini_soc(7).unwrap();
        let exp = run_soc_experiment(&netlist, &ExperimentOptions::paper_tables_1_2()).unwrap();
        assert_eq!(exp.cores.len(), 2);
        for c in &exp.cores {
            assert!(c.fault_coverage > 0.9, "{}: {}", c.name, c.fault_coverage);
            assert!(c.patterns > 0);
        }
        assert!(exp.mono_coverage > 0.9);
        // The analysis used a t_mono at least the per-core max.
        assert!(exp.analysis.t_mono() >= exp.soc.max_core_patterns());
        assert!(exp.analysis.t_mono_is_measured());
        // Modular TDV should beat monolithic on this SOC.
        assert!(exp.analysis.reduction_ratio() > 1.0);
    }

    #[test]
    fn experiment_is_deterministic() {
        let netlist = mini_soc(7).unwrap();
        let o = ExperimentOptions::paper_tables_1_2();
        let a = run_soc_experiment(&netlist, &o).unwrap();
        let b = run_soc_experiment(&netlist, &o).unwrap();
        assert_eq!(a.t_mono, b.t_mono);
        assert_eq!(
            a.cores.iter().map(|c| c.patterns).collect::<Vec<_>>(),
            b.cores.iter().map(|c| c.patterns).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tdf_experiment_end_to_end() {
        let netlist = mini_soc(7).unwrap();
        let exp =
            run_soc_experiment_tdf(&netlist, 200, &ExperimentOptions::paper_tables_1_2()).unwrap();
        assert_eq!(exp.cores.len(), 2);
        for c in &exp.cores {
            assert!(c.patterns > 0, "{}", c.name);
            assert!(c.fault_coverage > 0.5, "{}: {}", c.name, c.fault_coverage);
        }
        assert!(exp.analysis.t_mono() >= exp.soc.max_core_patterns());
        // Equation 6 balances on the at-speed accounting too.
        assert_eq!(
            exp.analysis.monolithic().total() + exp.analysis.penalty() - exp.analysis.benefit(),
            exp.analysis.modular().total()
        );
    }

    #[test]
    fn soc_model_mirrors_netlist_interface() {
        let netlist = mini_soc(3).unwrap();
        let exp = run_soc_experiment(&netlist, &ExperimentOptions::paper_tables_1_2()).unwrap();
        let top = exp.soc.find("top").unwrap();
        let t = exp.soc.core(top);
        assert_eq!(t.inputs, netlist.chip_input_count() as u64);
        assert_eq!(t.outputs, netlist.chip_output_count() as u64);
        assert_eq!(
            exp.soc.total_scan_cells(),
            netlist.total_scan_cells() as u64
        );
    }
}
