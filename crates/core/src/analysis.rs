//! The monolithic-vs-modular comparison engine.

use modsoc_soc::stats::{pattern_count_stats, SampleStats};
use modsoc_soc::{CoreId, Soc};

use crate::error::AnalysisError;
use crate::tdv::{
    benefit_eq8, benefit_exact, core_tdv, isocost, modular_tdv, monolithic_tdv,
    monolithic_tdv_optimistic, TdvOptions, TdvVolume,
};

/// One per-core line of the analysis (a row of Tables 1–3).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CoreTdvRow {
    /// Which core.
    pub id: CoreId,
    /// Core name.
    pub name: String,
    /// Per-pattern wrapper cost (Equation 5).
    pub isocost: u64,
    /// Stand-alone test data volume (Equation 4 term).
    pub volume: TdvVolume,
}

/// The complete TDV analysis of one SOC.
///
/// Create with [`SocTdvAnalysis::compute`] (optimistic monolithic
/// pattern count, Equation 3) or
/// [`SocTdvAnalysis::compute_with_measured_tmono`] (a monolithic pattern
/// count measured by flattened-design ATPG, as in Tables 1–2).
///
/// # Example
///
/// Reproduce the paper's Table 1 headline from its published data:
///
/// ```
/// use modsoc_core::{SocTdvAnalysis, TdvOptions};
/// use modsoc_soc::itc02;
///
/// # fn main() -> Result<(), modsoc_core::AnalysisError> {
/// let soc = itc02::soc1();
/// let analysis = SocTdvAnalysis::compute_with_measured_tmono(
///     &soc,
///     &TdvOptions::tables_1_2(),
///     itc02::SOC1_MEASURED_TMONO,
/// )?;
/// assert_eq!(analysis.modular().total(), 45_183);
/// assert!((analysis.reduction_ratio() - 2.87).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SocTdvAnalysis {
    soc_name: String,
    options: TdvOptions,
    rows: Vec<CoreTdvRow>,
    t_mono: u64,
    t_mono_is_measured: bool,
    modular: TdvVolume,
    monolithic: TdvVolume,
    monolithic_optimistic: TdvVolume,
    penalty: u64,
    benefit_eq8: u64,
    benefit_exact: u64,
    pattern_stats: SampleStats,
}

impl SocTdvAnalysis {
    /// Analyse with the Equation 2/3 optimistic monolithic pattern count
    /// (`T_mono = max_i T_i`).
    ///
    /// # Errors
    ///
    /// Propagates SOC validation errors.
    pub fn compute(soc: &Soc, options: &TdvOptions) -> Result<SocTdvAnalysis, AnalysisError> {
        soc.validate()?;
        Ok(Self::build(soc, options, soc.max_core_patterns(), false))
    }

    /// Analyse with a measured monolithic pattern count (from a real
    /// flattened-design ATPG run).
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::TmonoBelowBound`] if `t_mono` undercuts
    /// the Equation 2 lower bound, and propagates validation errors.
    pub fn compute_with_measured_tmono(
        soc: &Soc,
        options: &TdvOptions,
        t_mono: u64,
    ) -> Result<SocTdvAnalysis, AnalysisError> {
        soc.validate()?;
        let max_core = soc.max_core_patterns();
        if t_mono < max_core {
            return Err(AnalysisError::TmonoBelowBound { t_mono, max_core });
        }
        Ok(Self::build(soc, options, t_mono, true))
    }

    fn build(soc: &Soc, options: &TdvOptions, t_mono: u64, measured: bool) -> SocTdvAnalysis {
        let rows = soc
            .iter()
            .map(|(id, c)| CoreTdvRow {
                id,
                name: c.name.clone(),
                isocost: isocost(soc, id, options),
                volume: core_tdv(soc, id, options),
            })
            .collect();
        SocTdvAnalysis {
            soc_name: soc.name().to_string(),
            options: *options,
            rows,
            t_mono,
            t_mono_is_measured: measured,
            modular: modular_tdv(soc, options),
            monolithic: monolithic_tdv(soc, t_mono),
            monolithic_optimistic: monolithic_tdv_optimistic(soc),
            penalty: crate::tdv::penalty(soc, options),
            benefit_eq8: benefit_eq8(soc, t_mono),
            benefit_exact: benefit_exact(soc, t_mono, options),
            pattern_stats: pattern_count_stats(soc),
        }
    }

    /// SOC name.
    #[must_use]
    pub fn soc_name(&self) -> &str {
        &self.soc_name
    }

    /// The options the analysis ran with.
    #[must_use]
    pub fn options(&self) -> &TdvOptions {
        &self.options
    }

    /// Per-core rows, in SOC core order.
    #[must_use]
    pub fn rows(&self) -> &[CoreTdvRow] {
        &self.rows
    }

    /// The monolithic pattern count used (measured or the Equation 2
    /// bound).
    #[must_use]
    pub fn t_mono(&self) -> u64 {
        self.t_mono
    }

    /// Whether [`SocTdvAnalysis::t_mono`] was measured (vs optimistic).
    #[must_use]
    pub fn t_mono_is_measured(&self) -> bool {
        self.t_mono_is_measured
    }

    /// Modular test data volume (Equation 4).
    #[must_use]
    pub fn modular(&self) -> TdvVolume {
        self.modular
    }

    /// Monolithic test data volume at the used `T_mono` (Equation 1).
    #[must_use]
    pub fn monolithic(&self) -> TdvVolume {
        self.monolithic
    }

    /// Optimistic monolithic test data volume (Equation 3).
    #[must_use]
    pub fn monolithic_optimistic(&self) -> TdvVolume {
        self.monolithic_optimistic
    }

    /// Isolation penalty (Equation 7).
    #[must_use]
    pub fn penalty(&self) -> u64 {
        self.penalty
    }

    /// Benefit as printed in Equation 8 (no chip-pin term).
    #[must_use]
    pub fn benefit_eq8(&self) -> u64 {
        self.benefit_eq8
    }

    /// Exact benefit, defined so Equation 6 balances identically.
    #[must_use]
    pub fn benefit(&self) -> u64 {
        self.benefit_exact
    }

    /// The Equation 6 residual of the printed Equation 8:
    /// `benefit() − benefit_eq8()` — the chip-pin term.
    #[must_use]
    pub fn eq8_residual(&self) -> u64 {
        self.benefit_exact - self.benefit_eq8.min(self.benefit_exact)
    }

    /// TDV reduction ratio of modular testing against the monolithic
    /// volume at the used `T_mono` (Table 1: 2.87, Table 2: 2.22).
    #[must_use]
    pub fn reduction_ratio(&self) -> f64 {
        self.monolithic.total() as f64 / self.modular.total() as f64
    }

    /// Pessimistic reduction ratio: against the optimistic monolithic
    /// volume (Table 1: 1.13, Table 2: 1.06).
    #[must_use]
    pub fn pessimistic_reduction_ratio(&self) -> f64 {
        self.monolithic_optimistic.total() as f64 / self.modular.total() as f64
    }

    /// The pessimism factor `T_mono / max_i T_i` (2.5× for SOC1, 2.1×
    /// for SOC2 in the paper) — only meaningful when `T_mono` was
    /// measured.
    #[must_use]
    pub fn pessimism_factor(&self) -> f64 {
        // Both volumes are linear in the pattern count, so this equals
        // t_mono / max_i T_i.
        let opt = self.monolithic_optimistic.total();
        if opt == 0 {
            return 1.0;
        }
        self.monolithic.total() as f64 / opt as f64
    }

    /// Modular TDV change versus the *optimistic* monolithic TDV, in
    /// percent (Table 4 column 7; negative = reduction).
    #[must_use]
    pub fn modular_change_pct(&self) -> f64 {
        let opt = self.monolithic_optimistic.total() as f64;
        if opt == 0.0 {
            return 0.0;
        }
        (self.modular.total() as f64 - opt) / opt * 100.0
    }

    /// Penalty as a percentage of the optimistic monolithic TDV
    /// (Table 4 column 5).
    #[must_use]
    pub fn penalty_pct(&self) -> f64 {
        let opt = self.monolithic_optimistic.total() as f64;
        if opt == 0.0 {
            return 0.0;
        }
        self.penalty as f64 / opt * 100.0
    }

    /// Exact benefit as a (negative) percentage of the optimistic
    /// monolithic TDV (Table 4 column 6).
    #[must_use]
    pub fn benefit_pct(&self) -> f64 {
        let opt = self.monolithic_optimistic.total() as f64;
        if opt == 0.0 {
            return 0.0;
        }
        -(self.benefit_exact as f64) / opt * 100.0
    }

    /// Pattern-count statistics over module cores (Table 4 column 3 is
    /// [`SampleStats::normalized_stdev`]).
    #[must_use]
    pub fn pattern_stats(&self) -> SampleStats {
        self.pattern_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsoc_soc::itc02;

    #[test]
    fn soc1_headline_numbers() {
        let soc = itc02::soc1();
        let a = SocTdvAnalysis::compute_with_measured_tmono(
            &soc,
            &TdvOptions::tables_1_2(),
            itc02::SOC1_MEASURED_TMONO,
        )
        .unwrap();
        assert_eq!(a.modular().total(), 45_183);
        assert_eq!(a.monolithic().total(), 129_816);
        assert_eq!(a.monolithic_optimistic().total(), 51_085);
        // Paper: reduction ratio 2.87, pessimistic 1.13, pessimism ~2.5x.
        assert!((a.reduction_ratio() - 2.873).abs() < 0.01);
        assert!((a.pessimistic_reduction_ratio() - 1.131).abs() < 0.01);
        assert!((a.pessimism_factor() - 2.541).abs() < 0.01);
        // Self-consistent penalty/benefit (paper prints 10,627 / 95,260;
        // both are 122 lower than its own per-row data implies).
        assert_eq!(a.penalty(), 10_749);
        assert_eq!(a.benefit(), 95_382);
        // Equation 6 balances exactly.
        assert_eq!(
            a.monolithic().total() + a.penalty() - a.benefit(),
            a.modular().total()
        );
    }

    #[test]
    fn soc2_headline_numbers() {
        let soc = itc02::soc2();
        let a = SocTdvAnalysis::compute_with_measured_tmono(
            &soc,
            &TdvOptions::tables_1_2(),
            itc02::SOC2_MEASURED_TMONO,
        )
        .unwrap();
        assert_eq!(a.modular().total(), 1_344_585);
        assert_eq!(a.monolithic().total(), 2_986_200);
        assert!((a.reduction_ratio() - 2.221).abs() < 0.01);
        assert!((a.pessimistic_reduction_ratio() - 1.062).abs() < 0.01);
        assert!((a.pessimism_factor() - 2.091).abs() < 0.01);
    }

    #[test]
    fn p34392_matches_table4_row() {
        let soc = itc02::p34392();
        let a = SocTdvAnalysis::compute(&soc, &TdvOptions::tables_3_4()).unwrap();
        let row = itc02::table4_row("p34392").unwrap();
        assert_eq!(a.monolithic_optimistic().total(), row.tdv_opt_mono);
        assert_eq!(a.modular().total(), row.tdv_modular);
        assert!(!a.t_mono_is_measured());
        assert_eq!(a.t_mono(), 12_336);
        // Percentages: benefit −95.5%, modular −86.0%... the paper's
        // modular_pct inherits its penalty decimal typo; the true value
        // is −94.5%.
        assert!(
            (a.benefit_pct() - row.benefit_pct).abs() < 0.06,
            "{}",
            a.benefit_pct()
        );
        assert!((a.modular_change_pct() + 94.54).abs() < 0.05);
        assert!((a.penalty_pct() - 0.9548).abs() < 0.01);
    }

    #[test]
    fn tmono_below_bound_rejected() {
        let soc = itc02::soc1();
        let err = SocTdvAnalysis::compute_with_measured_tmono(&soc, &TdvOptions::tables_1_2(), 3)
            .unwrap_err();
        assert!(matches!(
            err,
            AnalysisError::TmonoBelowBound { max_core: 85, .. }
        ));
    }

    #[test]
    fn rows_cover_all_cores() {
        let soc = itc02::p34392();
        let a = SocTdvAnalysis::compute(&soc, &TdvOptions::tables_3_4()).unwrap();
        assert_eq!(a.rows().len(), 20);
        let total: u64 = a.rows().iter().map(|r| r.volume.total()).sum();
        assert_eq!(total, a.modular().total());
    }

    #[test]
    fn pattern_stats_surface() {
        let soc = itc02::p34392();
        let a = SocTdvAnalysis::compute(&soc, &TdvOptions::tables_3_4()).unwrap();
        assert_eq!(a.pattern_stats().n, 19);
        assert!(a.pattern_stats().normalized_stdev() > 1.0);
    }

    #[test]
    fn eq8_residual_is_chip_pin_term() {
        let soc = itc02::p34392();
        let a = SocTdvAnalysis::compute(&soc, &TdvOptions::tables_3_4()).unwrap();
        let (i, o, b) = soc.chip_pins();
        assert_eq!(a.eq8_residual(), (i + o + 2 * b) * a.t_mono());
    }
}
