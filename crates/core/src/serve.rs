//! `modsoc serve`: a fault-tolerant ATPG service layer.
//!
//! The paper's modular-testing argument is about serving many cores'
//! test workloads through shared, contended infrastructure; this module
//! is that shape made literal — a long-lived daemon that accepts
//! `analyze`/`experiment` requests over hand-rolled HTTP/1.1 (plain
//! `TcpListener`, no external dependencies, per the workspace policy)
//! and multiplexes them onto a bounded worker pool. It is engineered to
//! degrade instead of falling over (see `DESIGN.md` §13):
//!
//! * **Admission control** — a bounded queue between the accept loop
//!   and the workers. Queue full or connection cap reached ⇒ the
//!   request is *shed* with `503` + `Retry-After`, never parked
//!   unboundedly.
//! * **Request coalescing** — experiment requests are keyed by the
//!   store's canonical content address ([`crate::campaign::unit_key`]);
//!   N concurrent identical requests block on one computation and all
//!   observe the same bytes. Cross-process writers are serialized by
//!   `modsoc_store`'s advisory locks.
//! * **Budget caps** — every request runs under a server-enforced
//!   [`RunBudget`] deadline, so one pathological netlist cannot starve
//!   the pool. A tripped budget is `200` with `"status":"partial"`; a
//!   deadline so tight nothing ran is `504`.
//! * **Panic isolation** — handler computations run inside
//!   [`crate::runctl::guard`]; a panic is a `500` for that request and
//!   the worker survives.
//! * **Slow-client defense** — read/write timeouts on every connection;
//!   a slowloris writer is dropped, not waited on. A keep-alive client
//!   that stalls mid-request gets a clean `408` + close, never a
//!   misparsed next request.
//! * **Keep-alive** — with [`ServeConfig::keep_alive`], connections are
//!   persistent HTTP/1.1: after each response the connection re-enters
//!   the read queue until the idle timeout, the per-connection request
//!   cap, a client `Connection: close`, or shutdown ends it. Pipelined
//!   bytes are carried over between requests instead of being dropped.
//! * **Priority lanes** — parsed requests land in one of two admission
//!   lanes (`/experiment` = heavy, everything else = light) drained by
//!   weighted round-robin with a deficit-token scheme
//!   ([`ServeConfig::lane_weights`]), so cheap `/analyze` probes are
//!   not starved behind long experiment runs. Lane depth and wait time
//!   are exported through `/metrics`.
//! * **Request batching** — with [`ServeConfig::batch_max`] > 1,
//!   coalesce leaders for *distinct* experiment keys with the same
//!   [`ExperimentOptions::fingerprint`] rendezvous for a short window
//!   ([`ServeConfig::batch_window`]) and run as one [`WorkerPool`]
//!   dispatch. Each batched unit runs with internal `jobs = 1`, which
//!   the jobs-invariance contract makes byte-identical to any other
//!   execution — batch composition can never change response bytes.
//! * **Observability** — `GET /metrics` serves a live JSON snapshot of
//!   the [`modsoc_metrics`] sink (queue/lane depth, coalesce hits,
//!   batch counts, shed count, per-phase timings).
//! * **Graceful drain** — shutdown (SIGTERM/ctrl-c in the CLI, or
//!   `POST /shutdown`) stops accepting, finishes queued work, and
//!   returns; idle keep-alive connections are closed instead of read
//!   further, and nothing is journaled half-written because every store
//!   write stays atomic + locked.
//!
//! # Endpoints
//!
//! | Method | Path        | Body                                   | Success |
//! |--------|-------------|----------------------------------------|---------|
//! | POST   | `/analyze`  | `{"soc": "<.soc text>", …}`            | 200     |
//! | POST   | `/experiment` | campaign-unit JSON (+ `timeout_ms`)  | 200     |
//! | GET    | `/metrics`  | —                                      | 200     |
//! | GET    | `/healthz`  | —                                      | 200     |
//! | POST   | `/shutdown` | —                                      | 200     |
//! | GET    | `/store/get?key=…` | —                               | 200/404 |
//! | POST   | `/store/put` | raw entry envelope                    | 200     |
//! | POST   | `/store/evict` | `{"key"\|"journal":…,"why":…}`      | 200     |
//! | POST   | `/store/claim` | `{"journal","unit","owner","action",…}` | 200 |
//! | GET    | `/store/journal?name=…` | —                          | 200/404 |
//! | POST   | `/store/journal` | `{"name":…,"entry":…}`            | 200     |
//!
//! The `/store/*` rows (requires `--store`; 422 without one) turn the
//! daemon into a **remote store backend**: raw entry/journal documents
//! in and out (validation stays client-side — see
//! `modsoc_store::backend`), plus the claim/lease CAS that lets N
//! `modsoc campaign --store-url` workers partition one spec without
//! recomputing each other's units.
//!
//! Overload taxonomy: `400` malformed request, `404`/`405` wrong
//! route/method, `408` keep-alive request stalled past its deadline,
//! `413` body over the cap, `422` valid request the engine rejects,
//! `500` isolated panic, `503` + `Retry-After` shed at admission, `504`
//! deadline exhausted before anything was analyzable.

use crate::analysis::SocTdvAnalysis;
use crate::campaign::{build_unit_netlist, unit_key, CampaignUnit};
use crate::experiment::{run_soc_experiment_guarded, ExperimentOptions};
use crate::parallel::WorkerPool;
use crate::report::render_analyze_report;
use crate::runctl::{guard, guard_result, CoreFailure};
use crate::tdv::{core_tdv_checked, TdvOptions};
use crate::RunBudget;
use modsoc_metrics::json::{self, JsonValue};
use modsoc_metrics::{Counter, MetricsSink, MetricsSnapshot, Phase, PhaseTimer, RecordingSink};
use modsoc_soc::format::parse_soc;
use modsoc_store::{ClaimOutcome, IngestError, RawDoc, ResultStore, StoreKey};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Hard cap on request head (request line + headers) bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// How long the accept loop sleeps between polls of a quiet listener —
/// also the latency bound on noticing a shutdown request.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// One slice of a worker's blocking read on a connection that has no
/// complete request buffered yet. Short enough that an idle keep-alive
/// connection never pins a worker for long; long enough that a
/// ping-pong client's next request almost always lands inside the
/// first slice (the read returns as soon as bytes arrive, not at the
/// slice boundary).
const READ_POLL: Duration = Duration::from_millis(15);

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads serving requests (each runs one request at a
    /// time; per-request engine parallelism is `jobs`).
    pub workers: usize,
    /// Bounded admission queue: connections accepted but not yet
    /// claimed by a worker. Beyond this, requests are shed with 503.
    pub queue_capacity: usize,
    /// Cap on connections in flight (queued + in service). Beyond
    /// this, requests are shed with 503.
    pub max_connections: usize,
    /// Request bodies over this many bytes get 413.
    pub max_body_bytes: usize,
    /// Socket read timeout: a client that stalls mid-request
    /// (slowloris) is dropped when it expires.
    pub read_timeout: Duration,
    /// Socket write timeout: a client that stops draining its response
    /// is dropped when it expires.
    pub write_timeout: Duration,
    /// Server-enforced deadline cap per request, in milliseconds. A
    /// request's own `timeout_ms` may shorten it but never extend it.
    pub max_request_ms: u64,
    /// `Retry-After` seconds advertised on shed (503) responses.
    pub retry_after_secs: u64,
    /// Engine worker threads per request (`ExperimentOptions::jobs`).
    pub jobs: usize,
    /// Content-addressed result store shared with CLI runs; also the
    /// coalescing key domain.
    pub store: Option<Arc<ResultStore>>,
    /// Whether store lookups are performed (`false` refreshes entries).
    pub store_read: bool,
    /// Serve multiple requests per connection (HTTP/1.1 keep-alive).
    /// Off by default: one request per connection, `Connection: close`,
    /// exactly the pre-keep-alive behavior.
    pub keep_alive: bool,
    /// Requests served on one connection before the server closes it
    /// (bounds how long one client can monopolize worker attention).
    pub keep_alive_max_requests: usize,
    /// How long a keep-alive connection may sit with no request bytes
    /// before the server closes it. Once a request has *started*
    /// arriving, `read_timeout` governs instead.
    pub idle_timeout: Duration,
    /// Cap on experiment units fused into one pool dispatch. `1`
    /// disables batching (every coalesce leader computes alone).
    pub batch_max: usize,
    /// How long a batch leader waits for compatible units to rendezvous
    /// before dispatching whatever has arrived.
    pub batch_window: Duration,
    /// Weighted round-robin shares for the (light, heavy) admission
    /// lanes when both are non-empty. `(4, 1)` = four light dispatches
    /// per heavy one under contention; an empty lane never blocks the
    /// other (work-conserving).
    pub lane_weights: (u64, u64),
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            max_connections: 256,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_request_ms: 30_000,
            retry_after_secs: 1,
            jobs: 1,
            store: None,
            store_read: true,
            keep_alive: false,
            keep_alive_max_requests: 256,
            idle_timeout: Duration::from_secs(2),
            batch_max: 1,
            batch_window: Duration::from_millis(3),
            lane_weights: (4, 1),
        }
    }
}

/// An HTTP response to one served request.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Response {
    status: u16,
    content_type: &'static str,
    retry_after: Option<u64>,
    body: String,
}

impl Response {
    fn json(status: u16, body: JsonValue) -> Response {
        Response {
            status,
            content_type: "application/json",
            retry_after: None,
            body: body.to_compact(),
        }
    }

    fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            JsonValue::Object(vec![
                ("status".to_string(), JsonValue::String("error".to_string())),
                ("error".to_string(), JsonValue::String(message.to_string())),
            ]),
        )
    }
}

/// One in-flight coalesced computation: followers wait on the condvar
/// until the leader publishes the response.
#[derive(Debug, Default)]
struct Flight {
    done: Mutex<Option<Response>>,
    cv: Condvar,
}

/// Which admission lane a parsed request is dispatched to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lane {
    /// Cheap control-plane traffic: `/analyze`, `/healthz`, `/metrics`,
    /// `/shutdown`, errors.
    Light,
    /// `/experiment` — engine runs that can hold a worker for seconds.
    Heavy,
}

/// One admitted connection between requests: the socket plus any bytes
/// read past the previous request (pipelining carry-over) and the
/// keep-alive bookkeeping.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet consumed by a parsed request.
    buf: Vec<u8>,
    /// Requests already served on this connection.
    served: usize,
    /// When a connection with *no* request bytes pending is closed.
    idle_deadline: Instant,
    /// Once the first byte of a request has arrived: when the rest must
    /// be complete (slowloris / stalled-body defense). `None` between
    /// requests.
    read_deadline: Option<Instant>,
}

/// A fully parsed request waiting in an admission lane for a worker.
#[derive(Debug)]
struct ComputeItem {
    conn: Conn,
    req: Request,
    lane: Lane,
    enqueued: Instant,
}

/// The scheduler state all workers share: connections waiting for
/// request bytes plus the two parsed-request lanes and their
/// round-robin tokens. One mutex keeps admission accounting exact.
#[derive(Debug, Default)]
struct Sched {
    /// Connections awaiting (more of) a request: newly admitted and
    /// recycled keep-alive sockets alike.
    read_q: VecDeque<Conn>,
    light: VecDeque<ComputeItem>,
    heavy: VecDeque<ComputeItem>,
    light_tokens: u64,
    heavy_tokens: u64,
}

impl Sched {
    /// Work not yet claimed by any worker — the quantity admission
    /// control bounds with `queue_capacity`.
    fn pending(&self) -> usize {
        self.read_q.len() + self.light.len() + self.heavy.len()
    }
}

/// One experiment enrolled for batch formation: the inputs a leader
/// needs to run it plus the slot its response is published into.
#[derive(Debug)]
struct BatchJob {
    unit: CampaignUnit,
    options: ExperimentOptions,
    timeout_ms: Option<u64>,
    key_hex: String,
    /// Batch-compatibility class ([`ExperimentOptions::fingerprint`]
    /// of the *effective* options, `skip_monolithic` applied).
    fingerprint: String,
    slot: Arc<Mutex<Option<Response>>>,
}

/// Rendezvous point for batch formation. `forming` serializes *leader
/// election* only — a formed batch computes outside the lock, so a new
/// leader can collect the next batch while the previous one runs.
#[derive(Debug, Default)]
struct BatchState {
    pending: Vec<BatchJob>,
    forming: bool,
}

/// State shared between the accept loop, the workers and handles.
#[derive(Debug)]
struct Shared {
    config: ServeConfig,
    sink: RecordingSink,
    sched: Mutex<Sched>,
    sched_cv: Condvar,
    shutdown: AtomicBool,
    /// Connections admitted and not yet fully served.
    active: AtomicUsize,
    started: Instant,
    inflight: Mutex<HashMap<[u8; 32], Arc<Flight>>>,
    batch: Mutex<BatchState>,
    batch_cv: Condvar,
    /// Heavy-lane requests a worker has claimed and not yet answered.
    /// Batch leaders use it to decide whether a compatible companion
    /// could still enroll — idle keep-alive connections sitting in the
    /// read queue are invisible here, so serial traffic never waits
    /// out the batch window for company that cannot come.
    heavy_busy: AtomicUsize,
}

/// RAII decrement for [`Shared::heavy_busy`] — panic-safe, so a poisoned
/// request can never permanently inflate the batch-prospect count.
struct HeavyBusy<'a>(&'a AtomicUsize);

impl Drop for HeavyBusy<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Lock that survives a poisoned mutex: a panicking holder is already
/// isolated per request, and serving degraded beats deadlocking the
/// daemon.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A handle for triggering (and observing) shutdown from outside
/// [`Server::run`] — a signal-watcher thread, a test, or the
/// `POST /shutdown` endpoint.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin a graceful drain: stop accepting, finish queued work,
    /// make [`Server::run`] return. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.sched_cv.notify_all();
        self.shared.batch_cv.notify_all();
    }

    /// Whether a drain has been requested.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// The `modsoc serve` daemon: admission queue → coalesce → worker pool
/// → respond. See the module docs for the architecture.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listener (port 0 picks an ephemeral port; read it back
    /// with [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                config,
                sink: RecordingSink::new(),
                sched: Mutex::new(Sched::default()),
                sched_cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
                active: AtomicUsize::new(0),
                started: Instant::now(),
                inflight: Mutex::new(HashMap::new()),
                batch: Mutex::new(BatchState::default()),
                batch_cv: Condvar::new(),
                heavy_busy: AtomicUsize::new(0),
            }),
        })
    }

    /// The bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle usable from other threads.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serve until shutdown is requested, then drain the queue and
    /// return the final metrics snapshot. The accept loop runs on the
    /// calling thread; `config.workers` request workers are scoped to
    /// this call.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures. Per-request errors
    /// never surface here — they become HTTP error responses.
    pub fn run(self) -> io::Result<MetricsSnapshot> {
        self.listener.set_nonblocking(true)?;
        let shared = &self.shared;
        std::thread::scope(|s| {
            for _ in 0..shared.config.workers.max(1) {
                s.spawn(move || worker_loop(shared));
            }
            while !shared.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _)) => admit(shared, stream),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    // Transient accept failures (EMFILE under load,
                    // aborted handshakes) must not kill the daemon.
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
            shared.sched_cv.notify_all();
            shared.batch_cv.notify_all();
        });
        Ok(self.shared.sink.snapshot())
    }
}

/// Admission control: shed with 503 when the connection cap or the
/// pending-work bound is hit, otherwise enqueue for a worker. The
/// bound counts everything no worker has claimed yet — connections
/// awaiting bytes *and* parsed requests waiting in a lane — so a
/// backlog parked in the lanes sheds exactly like one parked in the
/// old single queue did.
fn admit(shared: &Shared, stream: TcpStream) {
    let over_cap = shared.active.load(Ordering::SeqCst) >= shared.config.max_connections;
    if !over_cap {
        let mut sched = lock_clean(&shared.sched);
        if sched.pending() < shared.config.queue_capacity {
            shared.active.fetch_add(1, Ordering::SeqCst);
            let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
            // Persistent connections live or die by this: with Nagle
            // on, the head/body write pair stalls behind delayed ACKs
            // (~10-40ms per response). One-shot connections never saw
            // it because their closing FIN flushed the last segment.
            let _ = stream.set_nodelay(true);
            sched.read_q.push_back(Conn {
                stream,
                buf: Vec::new(),
                served: 0,
                // A fresh connection gets the read timeout to produce
                // its first request; only *recycled* keep-alive
                // connections run on the idle clock.
                idle_deadline: Instant::now() + shared.config.read_timeout,
                read_deadline: None,
            });
            drop(sched);
            shared.sched_cv.notify_one();
            return;
        }
    }
    shed(shared, stream);
}

/// Refuse one connection with `503` + `Retry-After` (never a hang: the
/// socket gets short timeouts and is closed either way).
///
/// After writing the refusal the unread request is drained briefly:
/// closing with unread bytes in the receive buffer makes the kernel
/// send RST, which can destroy the buffered 503 before the client
/// reads it. The drain runs on the accept thread, so its timeout is
/// deliberately tiny — a well-behaved client half-closes right after
/// sending and hits EOF immediately; a stalling one costs at most
/// ~200 ms of accept latency, not a worker.
fn shed(shared: &Shared, mut stream: TcpStream) {
    shared.sink.add(Counter::ServeShed, 1);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let resp = Response {
        retry_after: Some(shared.config.retry_after_secs),
        ..Response::error(503, "server is at capacity, retry shortly")
    };
    let _ = write_response(&mut stream, &resp, false);
    drain_body(&mut stream);
}

/// What a worker pulled off the scheduler.
#[derive(Debug)]
enum Work {
    /// A connection that needs (more of) a request read.
    Read(Conn),
    /// A parsed request ready to compute and answer.
    Compute(ComputeItem),
}

/// What became of the connection a worker was handling.
#[derive(Debug)]
enum Disposition {
    /// The connection went back into a scheduler queue.
    Kept,
    /// The connection is gone; the caller releases its `active` slot.
    Closed,
}

/// One worker: interleave lane dispatch (weighted round-robin) with
/// read polling until shutdown *and* every queue is drained (graceful
/// shutdown finishes admitted work).
fn worker_loop(shared: &Shared) {
    while let Some(work) = next_work(shared) {
        // The outer guard is the worker's last line of defense: even a
        // panic outside the handler's own guard (e.g. in response
        // serialization) costs one connection, not the worker.
        let disposition = match work {
            Work::Read(conn) => guard(|| handle_read(shared, conn)),
            Work::Compute(item) => guard(|| handle_compute(shared, item)),
        };
        match disposition {
            Ok(Disposition::Kept) => {}
            Ok(Disposition::Closed) => {
                shared.active.fetch_sub(1, Ordering::SeqCst);
            }
            Err(_) => {
                shared.sink.add(Counter::ServePanics, 1);
                shared.active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Claim the next unit of work: lane items first (through the weighted
/// round-robin), then a connection to read. Returns `None` only when
/// shutdown is requested and nothing is left to drain.
fn next_work(shared: &Shared) -> Option<Work> {
    let mut sched = lock_clean(&shared.sched);
    loop {
        if let Some(item) = pick_lane(&mut sched, shared.config.lane_weights) {
            return Some(Work::Compute(item));
        }
        if let Some(conn) = sched.read_q.pop_front() {
            return Some(Work::Read(conn));
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        let (s, _) = shared
            .sched_cv
            .wait_timeout(sched, Duration::from_millis(50))
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        sched = s;
    }
}

/// Weighted round-robin with refilling tokens: when both lanes hold
/// work, dispatches split `light:heavy = lane_weights`; an empty lane
/// cedes its turn (never the whole scheduler) to the other.
fn pick_lane(sched: &mut Sched, weights: (u64, u64)) -> Option<ComputeItem> {
    if sched.light.is_empty() && sched.heavy.is_empty() {
        return None;
    }
    if sched.light_tokens == 0 && sched.heavy_tokens == 0 {
        sched.light_tokens = weights.0.max(1);
        sched.heavy_tokens = weights.1.max(1);
    }
    if !sched.light.is_empty() && (sched.light_tokens > 0 || sched.heavy.is_empty()) {
        sched.light_tokens = sched.light_tokens.saturating_sub(1);
        return sched.light.pop_front();
    }
    sched.heavy_tokens = sched.heavy_tokens.saturating_sub(1);
    sched.heavy.pop_front()
}

/// Push a connection back into the read queue and wake a worker.
fn requeue(shared: &Shared, conn: Conn) -> Disposition {
    let mut sched = lock_clean(&shared.sched);
    sched.read_q.push_back(conn);
    drop(sched);
    shared.sched_cv.notify_one();
    Disposition::Kept
}

/// Recycle a keep-alive connection after answering one request: bump
/// the served count, rearm the idle clock, and rejoin the read queue.
/// Carried-over pipelined bytes run on the read (not idle) clock.
fn recycle(shared: &Shared, mut conn: Conn) -> Disposition {
    conn.served += 1;
    let now = Instant::now();
    conn.idle_deadline = now + shared.config.idle_timeout;
    conn.read_deadline = if conn.buf.is_empty() {
        None
    } else {
        Some(now + shared.config.read_timeout)
    };
    requeue(shared, conn)
}

/// Whether the connection may serve another request after this one.
fn may_keep_alive(shared: &Shared, conn: &Conn, client_close: bool) -> bool {
    shared.config.keep_alive
        && !client_close
        && !shared.shutdown.load(Ordering::SeqCst)
        && conn.served + 1 < shared.config.keep_alive_max_requests.max(1)
}

/// Answer a request that failed in the read path (400/408/413-unframed)
/// and close: after these the byte stream can no longer be trusted to
/// be request-aligned, so keep-alive never continues past them.
fn fail_and_close(shared: &Shared, conn: &mut Conn, resp: &Response) -> Disposition {
    shared.sink.add(Counter::ServeRequests, 1);
    let _ = write_response(&mut conn.stream, resp, false);
    Disposition::Closed
}

/// Progress one connection toward a parsed request: consume buffered
/// bytes first (pipelining carry-over), then poll the socket in
/// [`READ_POLL`] slices so an idle keep-alive connection never pins a
/// worker. A connection that stalls mid-request past its deadline gets
/// a clean `408` + close — its late bytes can never be misparsed as a
/// fresh request line.
fn handle_read(shared: &Shared, mut conn: Conn) -> Disposition {
    loop {
        match try_parse(&conn.buf, shared.config.max_body_bytes) {
            TryParse::Complete(req, consumed) => {
                conn.buf.drain(..consumed);
                return dispatch(shared, conn, req);
            }
            TryParse::Oversized {
                head_end,
                content_length,
                close,
            } => {
                return handle_oversized(shared, conn, head_end, content_length, close);
            }
            TryParse::Malformed => {
                let resp = Response::error(400, "malformed HTTP request");
                return fail_and_close(shared, &mut conn, &resp);
            }
            TryParse::HeadTooBig => {
                drain_body(&mut conn.stream);
                let resp = Response::error(413, "request head exceeds the size cap");
                return fail_and_close(shared, &mut conn, &resp);
            }
            TryParse::Incomplete => {}
        }
        // Draining for shutdown: a connection *between* requests is not
        // admitted work — close it instead of reading further.
        if shared.shutdown.load(Ordering::SeqCst) && conn.buf.is_empty() {
            return Disposition::Closed;
        }
        let _ = conn.stream.set_read_timeout(Some(READ_POLL));
        let mut tmp = [0u8; 4096];
        match conn.stream.read(&mut tmp) {
            // Clean EOF: the client is done with this connection.
            Ok(0) => return Disposition::Closed,
            Ok(n) => {
                conn.buf.extend_from_slice(&tmp[..n]);
                if conn.read_deadline.is_none() {
                    conn.read_deadline = Some(Instant::now() + shared.config.read_timeout);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                let now = Instant::now();
                if conn.buf.is_empty() && conn.read_deadline.is_none() {
                    if now >= conn.idle_deadline {
                        // Idle timeout with nothing buffered: silent
                        // close, exactly what an idle peer expects.
                        return Disposition::Closed;
                    }
                } else if now >= conn.read_deadline.unwrap_or(conn.idle_deadline) {
                    // A request started arriving and then stalled past
                    // its deadline (e.g. a body sent after the idle
                    // timeout fired). Answer 408 and close.
                    shared.sink.add(Counter::ServeRequestTimeouts, 1);
                    let resp = Response::error(408, "request timed out before it was complete");
                    return fail_and_close(shared, &mut conn, &resp);
                }
                // Deadline not reached: yield the worker and requeue.
                return requeue(shared, conn);
            }
            Err(_) => return Disposition::Closed,
        }
    }
}

/// Route a parsed request into its admission lane.
fn dispatch(shared: &Shared, mut conn: Conn, req: Request) -> Disposition {
    let now = Instant::now();
    conn.read_deadline = if conn.buf.is_empty() {
        None
    } else {
        // A pipelined next request is already (partially) buffered:
        // keep it on the read clock.
        Some(now + shared.config.read_timeout)
    };
    let lane = if req.path == "/experiment" {
        Lane::Heavy
    } else {
        Lane::Light
    };
    shared.sink.add(
        match lane {
            Lane::Light => Counter::ServeLaneLight,
            Lane::Heavy => Counter::ServeLaneHeavy,
        },
        1,
    );
    let item = ComputeItem {
        conn,
        req,
        lane,
        enqueued: now,
    };
    let mut sched = lock_clean(&shared.sched);
    match lane {
        Lane::Light => sched.light.push_back(item),
        Lane::Heavy => sched.heavy.push_back(item),
    }
    drop(sched);
    shared.sched_cv.notify_one();
    Disposition::Kept
}

/// Compute and answer one parsed request, then recycle or close the
/// connection per the keep-alive rules.
fn handle_compute(shared: &Shared, item: ComputeItem) -> Disposition {
    let ComputeItem {
        mut conn,
        req,
        lane,
        enqueued,
    } = item;
    let wait = u64::try_from(enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
    shared.sink.time(
        match lane {
            Lane::Light => Phase::ServeWaitLight,
            Lane::Heavy => Phase::ServeWaitHeavy,
        },
        wait,
    );
    shared.sink.add(Counter::ServeRequests, 1);
    if conn.served > 0 {
        shared.sink.add(Counter::ServeKeepAliveReuses, 1);
    }
    let response = {
        let _busy = matches!(lane, Lane::Heavy).then(|| {
            shared.heavy_busy.fetch_add(1, Ordering::SeqCst);
            HeavyBusy(&shared.heavy_busy)
        });
        let _t = PhaseTimer::start(&shared.sink, Phase::ServeRequest);
        route(shared, &req)
    };
    let keep = may_keep_alive(shared, &conn, req.close);
    if write_response(&mut conn.stream, &response, keep).is_err() || !keep {
        return Disposition::Closed;
    }
    recycle(shared, conn)
}

/// Reject an over-cap body while keeping the byte stream framed: the
/// announced body is read and discarded so that (under keep-alive) the
/// next request starts exactly at the next byte. An unframeable drain
/// (no bytes coming, or a body past [`DRAIN_LIMIT`]) closes instead.
fn handle_oversized(
    shared: &Shared,
    mut conn: Conn,
    head_end: usize,
    content_length: usize,
    close: bool,
) -> Disposition {
    shared.sink.add(Counter::ServeRequests, 1);
    let body_start = head_end + 4;
    let have = conn
        .buf
        .len()
        .saturating_sub(body_start)
        .min(content_length);
    conn.buf.drain(..body_start + have);
    let framed = drain_exact(
        &mut conn.stream,
        content_length - have,
        shared.config.read_timeout,
    );
    let keep = framed && may_keep_alive(shared, &conn, close);
    let resp = Response::error(413, "request body exceeds the size cap");
    if write_response(&mut conn.stream, &resp, keep).is_err() || !keep {
        return Disposition::Closed;
    }
    recycle(shared, conn)
}

/// A parsed request: method, path, body, and whether the client asked
/// to close the connection after the response.
#[derive(Debug)]
struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
    close: bool,
}

/// Outcome of trying to parse one request out of a connection buffer.
#[derive(Debug)]
enum TryParse {
    /// A full request plus how many buffer bytes it consumed.
    Complete(Request, usize),
    /// Valid so far; more bytes needed.
    Incomplete,
    /// Head parsed but the announced body exceeds the cap: the caller
    /// can still drain `content_length` bytes to stay framed.
    Oversized {
        head_end: usize,
        content_length: usize,
        close: bool,
    },
    /// Request line + headers exceed [`MAX_HEAD_BYTES`].
    HeadTooBig,
    /// Not parseable as HTTP/1.1.
    Malformed,
}

/// Parse one HTTP/1.1 request (request line, headers, `Content-Length`
/// body) from the front of `buf` without consuming it.
fn try_parse(buf: &[u8], max_body: usize) -> TryParse {
    let Some(head_end) = find_blank_line(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return TryParse::HeadTooBig;
        }
        return TryParse::Incomplete;
    };
    let Ok(head) = std::str::from_utf8(&buf[..head_end]) else {
        return TryParse::Malformed;
    };
    let mut lines = head.split("\r\n");
    let Some(request_line) = lines.next() else {
        return TryParse::Malformed;
    };
    let mut parts = request_line.split_ascii_whitespace();
    let Some(method) = parts.next() else {
        return TryParse::Malformed;
    };
    let Some(path) = parts.next() else {
        return TryParse::Malformed;
    };
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return TryParse::Malformed,
    }
    let mut content_length = 0usize;
    let mut close = false;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                let Ok(v) = value.trim().parse::<usize>() else {
                    return TryParse::Malformed;
                };
                content_length = v;
            } else if name.eq_ignore_ascii_case("connection")
                && value.trim().eq_ignore_ascii_case("close")
            {
                close = true;
            }
        }
    }
    if content_length > max_body {
        return TryParse::Oversized {
            head_end,
            content_length,
            close,
        };
    }
    let total = head_end + 4 + content_length;
    if buf.len() < total {
        return TryParse::Incomplete;
    }
    TryParse::Complete(
        Request {
            method: method.to_string(),
            path: path.to_string(),
            body: buf[head_end + 4..total].to_vec(),
            close,
        },
        total,
    )
}

/// Cap on how much of a rejected oversized body the server reads and
/// discards before responding 413. Past it the client just sees the
/// connection close.
const DRAIN_LIMIT: usize = 16 * 1024 * 1024;

/// Swallow the remainder of a rejected request body so the refusal can
/// be delivered to a client still mid-send. Stops at EOF (a client that
/// half-closed after sending), the read timeout, or [`DRAIN_LIMIT`].
fn drain_body(stream: &mut TcpStream) {
    let mut tmp = [0u8; 8192];
    let mut total = 0usize;
    while total < DRAIN_LIMIT {
        match stream.read(&mut tmp) {
            Ok(0) | Err(_) => return,
            Ok(n) => total += n,
        }
    }
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Discard exactly `need` more bytes of a rejected request body so the
/// connection stays request-aligned (keep-alive can continue past a
/// 413). Returns `false` — meaning the connection must close — when
/// the peer stops sending, the read timeout expires, or the announced
/// body exceeds [`DRAIN_LIMIT`] (then the unframed best-effort drain
/// runs instead, matching the one-shot behavior).
fn drain_exact(stream: &mut TcpStream, mut need: usize, read_timeout: Duration) -> bool {
    if need > DRAIN_LIMIT {
        drain_body(stream);
        return false;
    }
    let _ = stream.set_read_timeout(Some(read_timeout));
    let deadline = Instant::now() + read_timeout;
    let mut tmp = [0u8; 8192];
    while need > 0 {
        if Instant::now() >= deadline {
            return false;
        }
        let want = tmp.len().min(need);
        match stream.read(&mut tmp[..want]) {
            Ok(0) | Err(_) => return false,
            Ok(n) => need -= n,
        }
    }
    true
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response, keep_alive: bool) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(secs) = resp.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

fn route(shared: &Shared, req: &Request) -> Response {
    // `/store/get?key=…` style requests carry their operand in the
    // query string; everything before `?` selects the handler.
    let (path, query) = req.path.split_once('?').unwrap_or((req.path.as_str(), ""));
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => Response::json(
            200,
            JsonValue::Object(vec![(
                "status".to_string(),
                JsonValue::String("ok".to_string()),
            )]),
        ),
        ("GET", "/metrics") => metrics_response(shared),
        ("POST", "/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.sched_cv.notify_all();
            shared.batch_cv.notify_all();
            Response::json(
                200,
                JsonValue::Object(vec![(
                    "status".to_string(),
                    JsonValue::String("draining".to_string()),
                )]),
            )
        }
        ("POST", "/analyze") => handle_analyze(shared, &req.body),
        ("POST", "/experiment") => handle_experiment(shared, &req.body),
        ("GET", "/store/get") => handle_store_get(shared, query),
        ("POST", "/store/put") => handle_store_put(shared, &req.body),
        ("POST", "/store/evict") => handle_store_evict(shared, &req.body),
        ("POST", "/store/claim") => handle_store_claim(shared, &req.body),
        ("GET", "/store/journal") => handle_store_journal_get(shared, query),
        ("POST", "/store/journal") => handle_store_journal_merge(shared, &req.body),
        (
            _,
            "/healthz" | "/metrics" | "/shutdown" | "/analyze" | "/experiment" | "/store/get"
            | "/store/put" | "/store/evict" | "/store/claim" | "/store/journal",
        ) => Response::error(405, "method not allowed for this path"),
        _ => Response::error(404, "unknown path"),
    }
}

/// Extract one `name=value` pair from a query string. Values are used
/// verbatim (keys are hex, journal names are pre-sanitized stems — no
/// percent-decoding is needed or performed).
fn query_param(query: &str, name: &str) -> Option<String> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == name).then(|| v.to_string())
    })
}

/// The store behind the `/store/*` endpoints, or the 422 telling the
/// client this daemon was started without `--store` (a non-retryable
/// configuration error, distinct from the 404 that means "miss").
fn store_handle(shared: &Shared) -> Result<&Arc<ResultStore>, Response> {
    shared
        .config
        .store
        .as_ref()
        .ok_or_else(|| Response::error(422, "this server has no --store"))
}

/// `GET /store/get?key=<hex>`: serve the raw entry document, 404 on a
/// miss. The bytes are *not* validated here — the corruption taxonomy
/// runs exactly once, on the consuming client, so server-side damage is
/// observed (and evicted) client-side.
fn handle_store_get(shared: &Shared, query: &str) -> Response {
    let store = match store_handle(shared) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let Some(key_hex) = query_param(query, "key") else {
        return Response::error(400, "missing key=<hex> query parameter");
    };
    if StoreKey::from_hex(&key_hex).is_none() {
        return Response::error(400, "malformed key");
    }
    shared.sink.add(Counter::StoreRemoteGets, 1);
    match store.load_entry_raw(&key_hex) {
        RawDoc::Present(text) => Response {
            status: 200,
            content_type: "application/json",
            retry_after: None,
            body: text,
        },
        RawDoc::Missing => Response::error(404, "miss"),
        RawDoc::Unreadable(why) => {
            // Unreadable on the serving side can never be validated by
            // anyone; evict here rather than shipping garbage.
            let key = StoreKey::from_hex(&key_hex).expect("validated above");
            store.evict(&key, &why, &shared.sink);
            Response::error(404, "miss")
        }
    }
}

/// `POST /store/put`: ingest a full entry envelope (the body is the
/// document). The envelope is validated — schema, key, checksum — and
/// stored byte-verbatim, so an entry written through the daemon is
/// identical to one the client would have written locally.
fn handle_store_put(shared: &Shared, body: &[u8]) -> Response {
    let store = match store_handle(shared) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let text = match body_str(body) {
        Ok(t) => t,
        Err(r) => return r,
    };
    let Some(key_hex) = json::parse(text)
        .ok()
        .and_then(|d| d.get("key").and_then(JsonValue::as_str).map(String::from))
    else {
        return Response::error(422, "body is not an entry envelope with a key field");
    };
    shared.sink.add(Counter::StoreRemotePuts, 1);
    match store.ingest(&key_hex, text, &shared.sink) {
        Ok(()) => Response::json(
            200,
            JsonValue::Object(vec![
                (
                    "status".to_string(),
                    JsonValue::String("stored".to_string()),
                ),
                ("key".to_string(), JsonValue::String(key_hex)),
            ]),
        ),
        Err(IngestError::Invalid(why)) => Response::error(422, &why),
        Err(IngestError::Store(e)) => store_error_response(&e),
    }
}

/// `POST /store/evict {"key":<hex>}` or `{"journal":<name>}`: a remote
/// reader failed validation on a document this daemon served and asks
/// for it to be removed — the write half of the client-side corruption
/// taxonomy.
fn handle_store_evict(shared: &Shared, body: &[u8]) -> Response {
    let store = match store_handle(shared) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let text = match body_str(body) {
        Ok(t) => t,
        Err(r) => return r,
    };
    let Ok(doc) = json::parse(text) else {
        return Response::error(400, "malformed JSON body");
    };
    let why = doc
        .get("why")
        .and_then(JsonValue::as_str)
        .unwrap_or("remote eviction")
        .to_string();
    if let Some(key_hex) = doc.get("key").and_then(JsonValue::as_str) {
        let Some(key) = StoreKey::from_hex(key_hex) else {
            return Response::error(400, "malformed key");
        };
        store.evict(&key, &why, &shared.sink);
    } else if let Some(name) = doc.get("journal").and_then(JsonValue::as_str) {
        store.remove_journal(name, &why, &shared.sink);
    } else {
        return Response::error(400, "body needs a key or journal field");
    }
    Response::json(
        200,
        JsonValue::Object(vec![(
            "status".to_string(),
            JsonValue::String("evicted".to_string()),
        )]),
    )
}

/// `POST /store/claim`: the compare-and-swap distributed campaigns
/// partition work with. Body: `{"journal":…,"unit":…,"owner":…,
/// "action":"acquire"|"renew"|"release","key":…,"lease_ms":…}`.
fn handle_store_claim(shared: &Shared, body: &[u8]) -> Response {
    let store = match store_handle(shared) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let text = match body_str(body) {
        Ok(t) => t,
        Err(r) => return r,
    };
    let Ok(doc) = json::parse(text) else {
        return Response::error(400, "malformed JSON body");
    };
    let field = |name: &str| doc.get(name).and_then(JsonValue::as_str).map(String::from);
    let (Some(journal), Some(unit), Some(owner)) =
        (field("journal"), field("unit"), field("owner"))
    else {
        return Response::error(400, "body needs journal, unit and owner fields");
    };
    let key = field("key").unwrap_or_default();
    let lease = Duration::from_millis(
        doc.get("lease_ms")
            .and_then(JsonValue::as_u64)
            .unwrap_or(30_000),
    );
    let action = field("action").unwrap_or_else(|| "acquire".to_string());
    let outcome = match action.as_str() {
        "acquire" => store.claim_unit(&journal, &unit, &key, &owner, lease),
        "renew" => store.renew_claim(&journal, &unit, &owner),
        "release" => store.release_claim(&journal, &unit, &owner),
        _ => return Response::error(400, "action must be acquire, renew or release"),
    };
    match outcome {
        Ok(outcome) => {
            let (tag, broke_stale, holder) = match &outcome {
                ClaimOutcome::Acquired { broke_stale } => {
                    shared.sink.add(Counter::StoreClaimsAcquired, 1);
                    if *broke_stale {
                        shared.sink.add(Counter::StoreClaimsExpired, 1);
                    }
                    ("acquired", *broke_stale, String::new())
                }
                ClaimOutcome::Held { owner } => {
                    shared.sink.add(Counter::StoreClaimsHeld, 1);
                    ("held", false, owner.clone())
                }
                ClaimOutcome::Released => ("released", false, String::new()),
                ClaimOutcome::NotOwner => ("not_owner", false, String::new()),
            };
            Response::json(
                200,
                JsonValue::Object(vec![
                    ("outcome".to_string(), JsonValue::String(tag.to_string())),
                    ("broke_stale".to_string(), JsonValue::Bool(broke_stale)),
                    ("owner".to_string(), JsonValue::String(holder)),
                ]),
            )
        }
        Err(e) => store_error_response(&e),
    }
}

/// `GET /store/journal?name=<stem>`: serve the raw journal document,
/// 404 when absent. Like `/store/get`, the bytes are not validated
/// here.
fn handle_store_journal_get(shared: &Shared, query: &str) -> Response {
    let store = match store_handle(shared) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let Some(name) = query_param(query, "name") else {
        return Response::error(400, "missing name=<stem> query parameter");
    };
    shared.sink.add(Counter::StoreRemoteJournalOps, 1);
    match store.load_journal_raw(&name) {
        RawDoc::Present(text) => Response {
            status: 200,
            content_type: "application/json",
            retry_after: None,
            body: text,
        },
        RawDoc::Missing => Response::error(404, "miss"),
        RawDoc::Unreadable(why) => {
            store.remove_journal(&name, &why, &shared.sink);
            Response::error(404, "miss")
        }
    }
}

/// `POST /store/journal {"name":…,"entry":{"unit":…,"key":…,
/// "summary":…}}`: merge one completion into the named journal under
/// its lock and return the merged journal document — the backend-side
/// half of [`modsoc_store::Journal::record`] for remote workers.
fn handle_store_journal_merge(shared: &Shared, body: &[u8]) -> Response {
    let store = match store_handle(shared) {
        Ok(s) => s,
        Err(r) => return r,
    };
    let text = match body_str(body) {
        Ok(t) => t,
        Err(r) => return r,
    };
    let Ok(doc) = json::parse(text) else {
        return Response::error(400, "malformed JSON body");
    };
    let (Some(name), Some(entry)) = (
        doc.get("name").and_then(JsonValue::as_str),
        doc.get("entry"),
    ) else {
        return Response::error(400, "body needs name and entry fields");
    };
    shared.sink.add(Counter::StoreRemoteJournalOps, 1);
    match store.merge_journal_raw(name, &entry.to_compact(), &shared.sink) {
        Ok(merged) => Response {
            status: 200,
            content_type: "application/json",
            retry_after: None,
            body: merged,
        },
        Err(IngestError::Invalid(why)) => Response::error(422, &why),
        Err(IngestError::Store(e)) => store_error_response(&e),
    }
}

/// Map a backend [`StoreError`] to a wire status: lock contention is
/// transient (503 + Retry-After, the client's backoff handles it), I/O
/// failure is a 500.
fn store_error_response(e: &modsoc_store::StoreError) -> Response {
    match e {
        modsoc_store::StoreError::Contended { .. } => {
            let mut r = Response::error(503, "store lock contended; retry");
            r.retry_after = Some(1);
            r
        }
        _ => Response::error(500, &e.to_string()),
    }
}

/// The live `/metrics` snapshot: queue/connection gauges plus every
/// counter and phase accumulator from the serve sink.
fn metrics_response(shared: &Shared) -> Response {
    let snap = shared.sink.snapshot();
    let counters = JsonValue::Object(
        Counter::ALL
            .iter()
            .map(|c| {
                (
                    c.name().to_string(),
                    JsonValue::Number(snap.counter(*c) as f64),
                )
            })
            .collect(),
    );
    let phases = JsonValue::Object(
        Phase::ALL
            .iter()
            .filter(|p| snap.phase_calls(**p) > 0)
            .map(|p| {
                (
                    p.name().to_string(),
                    JsonValue::Object(vec![
                        (
                            "calls".to_string(),
                            JsonValue::Number(snap.phase_calls(*p) as f64),
                        ),
                        ("wall_ms".to_string(), JsonValue::Number(snap.phase_ms(*p))),
                    ]),
                )
            })
            .collect(),
    );
    let (read_depth, light_depth, heavy_depth) = {
        let sched = lock_clean(&shared.sched);
        (sched.read_q.len(), sched.light.len(), sched.heavy.len())
    };
    let lane = |depth: usize, weight: u64| {
        JsonValue::Object(vec![
            ("depth".to_string(), JsonValue::Number(depth as f64)),
            ("weight".to_string(), JsonValue::Number(weight as f64)),
        ])
    };
    let mut fields = vec![
        ("schema".to_string(), JsonValue::Number(1.0)),
        (
            "uptime_ms".to_string(),
            JsonValue::Number(shared.started.elapsed().as_secs_f64() * 1e3),
        ),
        (
            "queue_depth".to_string(),
            JsonValue::Number((read_depth + light_depth + heavy_depth) as f64),
        ),
        (
            "read_depth".to_string(),
            JsonValue::Number(read_depth as f64),
        ),
        (
            "lanes".to_string(),
            JsonValue::Object(vec![
                (
                    "light".to_string(),
                    lane(light_depth, shared.config.lane_weights.0),
                ),
                (
                    "heavy".to_string(),
                    lane(heavy_depth, shared.config.lane_weights.1),
                ),
            ]),
        ),
        (
            "queue_capacity".to_string(),
            JsonValue::Number(shared.config.queue_capacity as f64),
        ),
        (
            "active_connections".to_string(),
            JsonValue::Number(shared.active.load(Ordering::SeqCst) as f64),
        ),
        (
            "workers".to_string(),
            JsonValue::Number(shared.config.workers as f64),
        ),
        ("counters".to_string(), counters),
        ("phases".to_string(), phases),
    ];
    if let Some(store) = &shared.config.store {
        fields.push((
            "store".to_string(),
            JsonValue::Object(vec![
                ("hits".to_string(), JsonValue::Number(store.hits() as f64)),
                (
                    "misses".to_string(),
                    JsonValue::Number(store.misses() as f64),
                ),
                (
                    "writes".to_string(),
                    JsonValue::Number(store.writes() as f64),
                ),
                (
                    "evictions".to_string(),
                    JsonValue::Number(store.evictions() as f64),
                ),
                (
                    "retries".to_string(),
                    JsonValue::Number(store.retries() as f64),
                ),
            ]),
        ));
    }
    Response::json(200, JsonValue::Object(fields))
}

fn body_str(body: &[u8]) -> Result<&str, Response> {
    std::str::from_utf8(body).map_err(|_| Response::error(400, "request body is not UTF-8"))
}

/// `POST /analyze`: run the TDV analysis on an inline `.soc` document.
///
/// Body fields: `soc` (required, the `.soc` text), `exclude_chip_pins`
/// (bool), `reuse` (0..=1), `measured_tmono` (u64), `format`
/// (`"json"` default, or `"text"` for bytes identical to
/// `modsoc analyze` stdout).
fn handle_analyze(shared: &Shared, body: &[u8]) -> Response {
    let text = match body_str(body) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let Ok(doc) = json::parse(text) else {
        return Response::error(400, "request body is not valid JSON");
    };
    let Some(soc_text) = doc.get("soc").and_then(JsonValue::as_str) else {
        return Response::error(400, "missing string field 'soc' (.soc file text)");
    };
    let exclude_chip_pins = matches!(doc.get("exclude_chip_pins"), Some(JsonValue::Bool(true)));
    let reuse = doc.get("reuse").and_then(JsonValue::as_f64);
    let measured_tmono = doc.get("measured_tmono").and_then(JsonValue::as_u64);
    let as_text = doc.get("format").and_then(JsonValue::as_str) == Some("text");
    if let Some(r) = reuse {
        if !(0.0..=1.0).contains(&r) {
            return Response::error(422, "'reuse' must be between 0 and 1");
        }
    }
    let computed = guard_result(|| -> Result<_, String> {
        let soc = parse_soc(soc_text).map_err(|e| e.to_string())?;
        let mut options = if exclude_chip_pins {
            TdvOptions::tables_1_2()
        } else {
            TdvOptions::tables_3_4()
        };
        if let Some(r) = reuse {
            options = options.with_functional_reuse(r);
        }
        for (id, core) in soc.iter() {
            if core_tdv_checked(&soc, id, &options).is_none() {
                return Err(format!(
                    "core `{}` overflows the TDV equations (corrupt counts?)",
                    core.name
                ));
            }
        }
        let analysis = match measured_tmono {
            Some(t) => SocTdvAnalysis::compute_with_measured_tmono(&soc, &options, t)
                .map_err(|e| e.to_string())?,
            None => SocTdvAnalysis::compute(&soc, &options).map_err(|e| e.to_string())?,
        };
        Ok((soc, analysis))
    });
    match computed {
        Ok((soc, analysis)) => {
            if as_text {
                Response {
                    status: 200,
                    content_type: "text/plain; charset=utf-8",
                    retry_after: None,
                    body: render_analyze_report(&soc, &analysis),
                }
            } else {
                Response::json(
                    200,
                    JsonValue::Object(vec![
                        ("status".to_string(), JsonValue::String("ok".to_string())),
                        ("soc".to_string(), JsonValue::String(soc.name().to_string())),
                        (
                            "tdv_modular".to_string(),
                            JsonValue::Number(analysis.modular().total() as f64),
                        ),
                        (
                            "tdv_monolithic".to_string(),
                            JsonValue::Number(analysis.monolithic().total() as f64),
                        ),
                        (
                            "modular_change_pct".to_string(),
                            JsonValue::Number(analysis.modular_change_pct()),
                        ),
                    ]),
                )
            }
        }
        Err(CoreFailure::Panicked(msg)) => {
            shared.sink.add(Counter::ServePanics, 1);
            Response::error(500, &format!("analysis panicked: {msg}"))
        }
        Err(failure) => Response::error(422, &failure.to_string()),
    }
}

/// `POST /experiment`: run one campaign-unit-shaped experiment
/// (`{"soc": "mini", "seed": 7}` or a generated-cores description),
/// coalesced on the unit's content address.
///
/// Extra field `timeout_ms` tightens (never extends) the server's
/// per-request deadline cap. Note the coalescing key is the *content*
/// address: like `jobs`, the timeout is excluded, so concurrent
/// identical units share one computation under the leader's budget.
fn handle_experiment(shared: &Shared, body: &[u8]) -> Response {
    let text = match body_str(body) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let Ok(doc) = json::parse(text) else {
        return Response::error(400, "request body is not valid JSON");
    };
    let timeout_ms = doc.get("timeout_ms").and_then(JsonValue::as_u64);
    let unit_doc = with_default_name(&doc);
    let unit = match CampaignUnit::from_json(&unit_doc, 0) {
        Ok(u) => u,
        Err(e) => return Response::error(422, &e.to_string()),
    };
    let options = experiment_options(shared);
    let key = unit_key(&unit, &options);
    // The *effective* options (skip_monolithic applied) define batch
    // compatibility: units whose fingerprints match produce bytes
    // independent of who they share a dispatch with.
    let mut effective = options;
    if unit.skip_monolithic {
        effective.monolithic = false;
    }
    let fingerprint = effective.fingerprint();
    let key_hex = key.hex();
    coalesce(shared, key.0, || {
        batch_or_compute(
            shared,
            BatchJob {
                unit,
                options: effective,
                timeout_ms,
                key_hex,
                fingerprint,
                slot: Arc::new(Mutex::new(None)),
            },
        )
    })
}

/// Give an anonymous experiment request the default unit name — the
/// name feeds the content key, so all anonymous requests for the same
/// unit coalesce.
fn with_default_name(doc: &JsonValue) -> JsonValue {
    if let JsonValue::Object(fields) = doc {
        if !fields.iter().any(|(k, _)| k == "name") {
            let mut fields = fields.clone();
            fields.push(("name".to_string(), JsonValue::String("request".to_string())));
            return JsonValue::Object(fields);
        }
    }
    doc.clone()
}

fn experiment_options(shared: &Shared) -> ExperimentOptions {
    let mut options = ExperimentOptions::paper_tables_1_2().with_jobs(shared.config.jobs);
    if let Some(store) = &shared.config.store {
        options = options
            .with_store(Arc::clone(store))
            .with_store_read(shared.config.store_read);
    }
    options
}

/// Single-flight coalescing: the first requester for `key` computes,
/// every concurrent duplicate waits on the leader's [`Flight`] and gets
/// the same response bytes.
fn coalesce(shared: &Shared, key: [u8; 32], compute: impl FnOnce() -> Response) -> Response {
    let flight = {
        let mut inflight = lock_clean(&shared.inflight);
        match inflight.get(&key) {
            Some(f) => Some(Arc::clone(f)),
            None => {
                inflight.insert(key, Arc::new(Flight::default()));
                None
            }
        }
    };
    let Some(flight) = flight else {
        // Leader: compute, publish, wake every follower. Publication
        // happens even if compute() returns an error response — the
        // followers asked the same question and get the same answer.
        let response = compute();
        let flight = lock_clean(&shared.inflight)
            .remove(&key)
            .unwrap_or_default();
        *lock_clean(&flight.done) = Some(response.clone());
        flight.cv.notify_all();
        return response;
    };
    // Follower: wait for the leader, bounded by the server's request
    // cap plus slack for queue time. A leader that outlives the bound
    // (wedged I/O) gets this follower a 504 rather than a hang.
    shared.sink.add(Counter::ServeCoalesceHits, 1);
    let deadline =
        Instant::now() + Duration::from_millis(shared.config.max_request_ms.saturating_mul(2));
    let mut done = lock_clean(&flight.done);
    loop {
        if let Some(response) = done.clone() {
            return response;
        }
        if Instant::now() >= deadline {
            shared.sink.add(Counter::ServeDeadlineTrips, 1);
            return Response::error(504, "coalesced computation did not finish in time");
        }
        let (d, _) = flight
            .cv
            .wait_timeout(done, Duration::from_millis(50))
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        done = d;
    }
}

/// Batching entry point for a coalesce leader: with batching disabled
/// (`batch_max <= 1`) compute directly; otherwise enroll the job at
/// the batch rendezvous and either *lead* a batch (collect compatible
/// jobs for up to [`ServeConfig::batch_window`], run them as one pool
/// dispatch) or wait for another leader to fill this job's slot.
///
/// `forming` serializes leader election only — a formed batch computes
/// outside the lock, so collection of the next batch overlaps the
/// previous batch's run.
fn batch_or_compute(shared: &Shared, job: BatchJob) -> Response {
    if shared.config.batch_max <= 1 {
        return compute_experiment(
            shared,
            &job.unit,
            &job.options,
            job.timeout_ms,
            &job.key_hex,
        );
    }
    let slot = Arc::clone(&job.slot);
    {
        let mut batch = lock_clean(&shared.batch);
        batch.pending.push(job);
    }
    shared.batch_cv.notify_all();
    let deadline =
        Instant::now() + Duration::from_millis(shared.config.max_request_ms.saturating_mul(2));
    let mut state = lock_clean(&shared.batch);
    loop {
        if let Some(response) = lock_clean(&slot).clone() {
            return response;
        }
        if !state.forming {
            state.forming = true;
            let formed = collect_batch(shared, state);
            if !formed.is_empty() {
                run_batch(shared, &formed);
                shared.batch_cv.notify_all();
            }
            // This leader's own job may have been claimed by a batch
            // another leader formed earlier; loop to re-check the slot.
            state = lock_clean(&shared.batch);
            continue;
        }
        if Instant::now() >= deadline {
            shared.sink.add(Counter::ServeDeadlineTrips, 1);
            return Response::error(504, "batched computation did not finish in time");
        }
        let (s, _) = shared
            .batch_cv
            .wait_timeout(state, Duration::from_millis(20))
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state = s;
    }
}

/// Collect one batch: wait (bounded by the batch window) for up to
/// `batch_max` jobs compatible with the oldest pending job, then
/// extract them. Consumes the guard; `forming` is reset before return.
fn collect_batch(shared: &Shared, mut state: MutexGuard<'_, BatchState>) -> Vec<BatchJob> {
    let max = shared.config.batch_max;
    let until = Instant::now() + shared.config.batch_window;
    while let Some(class) = state.pending.first().map(|j| j.fingerprint.clone()) {
        let compatible = state
            .pending
            .iter()
            .filter(|j| j.fingerprint == class)
            .count();
        if compatible >= max || Instant::now() >= until || shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // The window is only worth paying when a companion could still
        // arrive: a heavy item queued in its lane, or one claimed by
        // another worker that has not enrolled here yet (coalesce
        // followers overcount this — a bounded wait, never a stall).
        // Serial traffic sees zero prospects and skips the window, so
        // a lone request never trades latency for a batch of one.
        let queued = lock_clean(&shared.sched).heavy.len();
        let unenrolled = shared
            .heavy_busy
            .load(Ordering::SeqCst)
            .saturating_sub(state.pending.len());
        if queued + unenrolled == 0 {
            break;
        }
        let (s, _) = shared
            .batch_cv
            .wait_timeout(state, Duration::from_millis(1))
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state = s;
    }
    let mut formed = Vec::new();
    if let Some(class) = state.pending.first().map(|j| j.fingerprint.clone()) {
        let mut i = 0;
        while i < state.pending.len() && formed.len() < max {
            if state.pending[i].fingerprint == class {
                formed.push(state.pending.remove(i));
            } else {
                i += 1;
            }
        }
    }
    state.forming = false;
    drop(state);
    shared.batch_cv.notify_all();
    formed
}

/// Run one formed batch and publish each job's response into its slot.
/// A singleton batch runs exactly like the unbatched path (full
/// per-request `jobs`); a real batch fans the units across one
/// [`WorkerPool`] dispatch with internal `jobs = 1` per unit — the
/// jobs-invariance contract keeps every response byte-identical to its
/// solo execution, whatever the batch composition.
fn run_batch(shared: &Shared, formed: &[BatchJob]) {
    shared.sink.add(Counter::ServeBatches, 1);
    shared
        .sink
        .add(Counter::ServeBatchedUnits, formed.len() as u64);
    let responses: Vec<Response> = if formed.len() == 1 {
        let job = &formed[0];
        vec![compute_experiment(
            shared,
            &job.unit,
            &job.options,
            job.timeout_ms,
            &job.key_hex,
        )]
    } else {
        WorkerPool::new(shared.config.jobs).map(formed, |_, job| {
            let mut options = job.options.clone();
            options.jobs = 1;
            compute_experiment(shared, &job.unit, &options, job.timeout_ms, &job.key_hex)
        })
    };
    for (job, response) in formed.iter().zip(responses) {
        *lock_clean(&job.slot) = Some(response);
    }
}

fn compute_experiment(
    shared: &Shared,
    unit: &CampaignUnit,
    options: &ExperimentOptions,
    timeout_ms: Option<u64>,
    key_hex: &str,
) -> Response {
    let cap = shared.config.max_request_ms;
    let ms = timeout_ms.map_or(cap, |t| t.min(cap));
    let budget = RunBudget::unlimited().with_timeout(Duration::from_millis(ms));
    let result = guard_result(|| {
        let netlist = build_unit_netlist(unit)?;
        let mut unit_options = options.clone();
        if unit.skip_monolithic {
            unit_options.monolithic = false;
        }
        run_soc_experiment_guarded(&netlist, &unit_options, &budget)
    });
    match result {
        Ok(completion) => {
            let exp = &completion.result;
            let (status, note) = if let Some(e) = &completion.exhausted {
                shared.sink.add(Counter::ServeDeadlineTrips, 1);
                ("partial", e.to_string())
            } else if completion.failed_cores().is_empty() {
                ("ok", String::new())
            } else {
                let cores: Vec<&str> = completion
                    .failed_cores()
                    .iter()
                    .map(|o| o.core.as_str())
                    .collect();
                ("degraded", format!("failed cores: {}", cores.join(", ")))
            };
            Response::json(
                200,
                JsonValue::Object(vec![
                    ("status".to_string(), JsonValue::String(status.to_string())),
                    ("unit".to_string(), JsonValue::String(unit.name.clone())),
                    ("key".to_string(), JsonValue::String(key_hex.to_string())),
                    ("t_mono".to_string(), JsonValue::Number(exp.t_mono as f64)),
                    (
                        "tdv_modular".to_string(),
                        JsonValue::Number(exp.analysis.modular().total() as f64),
                    ),
                    (
                        "tdv_monolithic".to_string(),
                        JsonValue::Number(exp.analysis.monolithic().total() as f64),
                    ),
                    (
                        "reduction_ratio".to_string(),
                        JsonValue::Number(exp.analysis.reduction_ratio()),
                    ),
                    ("note".to_string(), JsonValue::String(note)),
                ]),
            )
        }
        Err(CoreFailure::Panicked(msg)) => {
            shared.sink.add(Counter::ServePanics, 1);
            Response::error(500, &format!("experiment panicked: {msg}"))
        }
        Err(failure) => {
            // A budget so tight the run errored out before producing
            // anything analyzable is a timeout, not a client error.
            if budget.check().is_some() {
                shared.sink.add(Counter::ServeDeadlineTrips, 1);
                Response::error(504, &format!("request deadline exhausted: {failure}"))
            } else {
                Response::error(422, &failure.to_string())
            }
        }
    }
}

// ---------------------------------------------------------------------
// Minimal HTTP client — shared by `modsoc loadgen`, the CI serve gate
// and the chaos tests, so the test stack exercises the same parser
// family as the server.
// ---------------------------------------------------------------------

/// A response as seen by [`http_request`].
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header with the given (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    #[must_use]
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Issue one HTTP/1.1 request (`Connection: close`) and read the full
/// response.
///
/// # Errors
///
/// Propagates connect/read/write failures; a malformed status line is
/// reported as [`io::ErrorKind::InvalidData`].
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let sock_addr: SocketAddr = addr
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("{addr}: {e}")))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    // Half-close: tells the server the body is finished (its drain of a
    // rejected oversized body hits EOF instead of its read timeout).
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_http_response(&raw)
}

/// Parse a response head (status line + headers, no terminator).
fn parse_response_head(head: &str) -> io::Result<(u16, Vec<(String, String)>)> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("unparseable status line"))?;
    let headers = lines
        .filter_map(|l| {
            l.split_once(':')
                .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    Ok((status, headers))
}

fn parse_http_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no header terminator"))?;
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("response head is not UTF-8"))?;
    let (status, headers) = parse_response_head(head)?;
    Ok(HttpResponse {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}

/// A persistent HTTP/1.1 client: issues many requests over one socket
/// (`Connection: keep-alive`), reconnecting at most once per request
/// when a reused socket turns out dead (the server may have idle-closed
/// it between requests). Tracks reuse statistics for `modsoc loadgen`.
///
/// Responses are framed by `Content-Length` (the server always sends
/// one); a response without it is read to EOF and the connection is
/// retired, as is any response carrying `Connection: close`.
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    timeout: Duration,
    stream: Option<TcpStream>,
    carry: Vec<u8>,
    requests: u64,
    connects: u64,
    reused: u64,
}

impl HttpClient {
    /// Build a client for `addr` (connects lazily on first request).
    ///
    /// # Errors
    ///
    /// Rejects an unparseable address.
    pub fn new(addr: &str, timeout: Duration) -> io::Result<HttpClient> {
        let addr: SocketAddr = addr
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("{addr}: {e}")))?;
        Ok(HttpClient {
            addr,
            timeout,
            stream: None,
            carry: Vec::new(),
            requests: 0,
            connects: 0,
            reused: 0,
        })
    }

    /// Requests issued, sockets opened, and requests served on a
    /// reused socket, in that order.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.requests, self.connects, self.reused)
    }

    /// Issue one request over the persistent connection.
    ///
    /// # Errors
    ///
    /// Propagates connect/read/write failures after the single
    /// stale-socket retry; malformed responses are
    /// [`io::ErrorKind::InvalidData`].
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        self.requests += 1;
        let mut reusing = self.stream.is_some();
        loop {
            if self.stream.is_none() {
                let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
                stream.set_read_timeout(Some(self.timeout))?;
                stream.set_write_timeout(Some(self.timeout))?;
                stream.set_nodelay(true)?;
                self.stream = Some(stream);
                self.carry.clear();
                self.connects += 1;
            }
            let stream = self.stream.as_mut().expect("connected above");
            match client_roundtrip(stream, &mut self.carry, &self.addr, method, path, body) {
                Ok(resp) => {
                    if reusing {
                        self.reused += 1;
                    }
                    if resp.header("connection") == Some("close")
                        || resp.header("content-length").is_none()
                    {
                        self.stream = None;
                        self.carry.clear();
                    }
                    return Ok(resp);
                }
                Err(e) => {
                    self.stream = None;
                    self.carry.clear();
                    // A dead reused socket is expected (server-side
                    // idle close raced our send): retry once, fresh.
                    if reusing {
                        reusing = false;
                        continue;
                    }
                    return Err(e);
                }
            }
        }
    }
}

/// One request/response exchange on an established keep-alive socket.
/// `carry` holds bytes read past the previous response; leftovers past
/// this response stay in it.
fn client_roundtrip(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    addr: &SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<HttpResponse> {
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let eof = || {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        )
    };
    let mut tmp = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_blank_line(carry) {
            break pos;
        }
        if carry.len() > MAX_HEAD_BYTES {
            return Err(bad("response head too large"));
        }
        match stream.read(&mut tmp)? {
            0 => return Err(eof()),
            n => carry.extend_from_slice(&tmp[..n]),
        }
    };
    let head_text =
        std::str::from_utf8(&carry[..head_end]).map_err(|_| bad("response head is not UTF-8"))?;
    let (status, headers) = parse_response_head(head_text)?;
    carry.drain(..head_end + 4);
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let body = match content_length {
        Some(len) => {
            while carry.len() < len {
                match stream.read(&mut tmp)? {
                    0 => return Err(eof()),
                    n => carry.extend_from_slice(&tmp[..n]),
                }
            }
            carry.drain(..len).collect()
        }
        None => {
            // No framing: read to EOF; the caller retires the socket.
            let mut rest = std::mem::take(carry);
            stream.read_to_end(&mut rest)?;
            rest
        }
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(
        config: ServeConfig,
    ) -> (
        String,
        ServerHandle,
        std::thread::JoinHandle<MetricsSnapshot>,
    ) {
        let server = Server::bind(config).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().unwrap());
        (addr, handle, join)
    }

    fn mini_body(seed: u64) -> String {
        format!("{{\"soc\": \"mini\", \"seed\": {seed}, \"timeout_ms\": 10000}}")
    }

    #[test]
    fn healthz_metrics_and_unknown_paths() {
        let (addr, handle, join) = start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let t = Duration::from_secs(5);
        let health = http_request(&addr, "GET", "/healthz", None, t).unwrap();
        assert_eq!(health.status, 200);
        assert!(health.body_text().contains("\"ok\""));
        let metrics = http_request(&addr, "GET", "/metrics", None, t).unwrap();
        assert_eq!(metrics.status, 200);
        let doc = json::parse(&metrics.body_text()).unwrap();
        assert!(doc.get("queue_capacity").is_some());
        assert!(doc
            .get("counters")
            .and_then(|c| c.get("serve_requests"))
            .is_some());
        let missing = http_request(&addr, "GET", "/nope", None, t).unwrap();
        assert_eq!(missing.status, 404);
        let wrong = http_request(&addr, "GET", "/analyze", None, t).unwrap();
        assert_eq!(wrong.status, 405);
        handle.shutdown();
        let snap = join.join().unwrap();
        assert!(snap.counter(Counter::ServeRequests) >= 4);
    }

    #[test]
    fn analyze_text_matches_cli_rendering() {
        let (addr, handle, join) = start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let soc_text = "soc demo\ncore a i=4 o=3 b=0 s=10 t=50\ncore b i=2 o=2 b=0 s=8 t=30\n";
        let body = JsonValue::Object(vec![
            ("soc".to_string(), JsonValue::String(soc_text.to_string())),
            ("format".to_string(), JsonValue::String("text".to_string())),
        ])
        .to_compact();
        let resp = http_request(
            &addr,
            "POST",
            "/analyze",
            Some(&body),
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_text());
        let soc = parse_soc(soc_text).unwrap();
        let analysis = SocTdvAnalysis::compute(&soc, &TdvOptions::tables_3_4()).unwrap();
        assert_eq!(resp.body_text(), render_analyze_report(&soc, &analysis));
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn malformed_and_oversized_requests_get_typed_errors() {
        let (addr, handle, join) = start(ServeConfig {
            workers: 1,
            max_body_bytes: 256,
            ..ServeConfig::default()
        });
        let t = Duration::from_secs(5);
        let bad = http_request(&addr, "POST", "/analyze", Some("{not json"), t).unwrap();
        assert_eq!(bad.status, 400);
        let huge = "x".repeat(1024);
        let oversized = http_request(&addr, "POST", "/analyze", Some(&huge), t).unwrap();
        assert_eq!(oversized.status, 413);
        let unprocessable =
            http_request(&addr, "POST", "/experiment", Some("{\"soc\": \"nope\"}"), t).unwrap();
        assert_eq!(unprocessable.status, 422);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn experiment_runs_and_coalesces_identical_requests() {
        let (addr, handle, join) = start(ServeConfig {
            workers: 4,
            jobs: 1,
            ..ServeConfig::default()
        });
        let body = mini_body(7);
        let mut bodies: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let addr = addr.clone();
                    let body = body.clone();
                    s.spawn(move || {
                        http_request(
                            &addr,
                            "POST",
                            "/experiment",
                            Some(&body),
                            Duration::from_secs(30),
                        )
                        .unwrap()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    let resp = h.join().unwrap();
                    assert_eq!(resp.status, 200, "{}", resp.body_text());
                    resp.body_text()
                })
                .collect()
        });
        bodies.dedup();
        assert_eq!(
            bodies.len(),
            1,
            "identical requests must serve identical bytes"
        );
        assert!(bodies[0].contains("\"status\":\"ok\""), "{}", bodies[0]);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn shutdown_endpoint_drains_the_server() {
        let (addr, _handle, join) = start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let resp = http_request(&addr, "POST", "/shutdown", None, Duration::from_secs(5)).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body_text().contains("draining"));
        let snap = join.join().unwrap();
        assert_eq!(snap.counter(Counter::ServePanics), 0);
    }

    #[test]
    fn request_parser_rejects_garbage() {
        let raw = parse_http_response(b"HTTP/1.1 200 OK\r\ncontent-type: a\r\n\r\nhi").unwrap();
        assert_eq!(raw.status, 200);
        assert_eq!(raw.header("Content-Type"), Some("a"));
        assert_eq!(raw.body_text(), "hi");
        assert!(parse_http_response(b"garbage").is_err());
    }

    #[test]
    fn keep_alive_reuses_one_socket_across_requests() {
        let (addr, handle, join) = start(ServeConfig {
            workers: 2,
            keep_alive: true,
            ..ServeConfig::default()
        });
        let mut client = HttpClient::new(&addr, Duration::from_secs(5)).unwrap();
        for _ in 0..4 {
            let resp = client.request("GET", "/healthz", None).unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.header("connection"), Some("keep-alive"));
        }
        let (requests, connects, reused) = client.stats();
        assert_eq!((requests, connects, reused), (4, 1, 3));
        handle.shutdown();
        let snap = join.join().unwrap();
        assert_eq!(snap.counter(Counter::ServeKeepAliveReuses), 3);
    }

    #[test]
    fn keep_alive_request_cap_closes_and_client_reconnects() {
        let (addr, handle, join) = start(ServeConfig {
            workers: 1,
            keep_alive: true,
            keep_alive_max_requests: 2,
            ..ServeConfig::default()
        });
        let mut client = HttpClient::new(&addr, Duration::from_secs(5)).unwrap();
        let first = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(first.header("connection"), Some("keep-alive"));
        let second = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(second.header("connection"), Some("close"));
        let third = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(third.status, 200);
        let (requests, connects, reused) = client.stats();
        assert_eq!((requests, connects, reused), (3, 2, 1));
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn keep_alive_oversized_body_is_drained_and_connection_survives() {
        let (addr, handle, join) = start(ServeConfig {
            workers: 1,
            keep_alive: true,
            max_body_bytes: 256,
            ..ServeConfig::default()
        });
        let mut client = HttpClient::new(&addr, Duration::from_secs(5)).unwrap();
        let huge = "x".repeat(4096);
        let resp = client.request("POST", "/analyze", Some(&huge)).unwrap();
        assert_eq!(resp.status, 413);
        assert_eq!(resp.header("connection"), Some("keep-alive"));
        let ok = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(ok.status, 200);
        let (_, connects, reused) = client.stats();
        assert_eq!((connects, reused), (1, 1));
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn analyze_lane_outruns_experiment_backlog() {
        // One worker, a heavy /experiment queued first: the light lane
        // must still get scheduled between heavy units rather than
        // waiting for the whole heavy backlog (WDRR, not FIFO).
        let (addr, handle, join) = start(ServeConfig {
            workers: 1,
            keep_alive: true,
            ..ServeConfig::default()
        });
        let t = Duration::from_secs(30);
        let mut heavy: Vec<_> = (0..3)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    http_request(&addr, "POST", "/experiment", Some(&mini_body(90 + i)), t).unwrap()
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        let analyze = http_request(&addr, "GET", "/healthz", None, t).unwrap();
        assert_eq!(analyze.status, 200);
        for h in heavy.drain(..) {
            assert_eq!(h.join().unwrap().status, 200);
        }
        handle.shutdown();
        let snap = join.join().unwrap();
        assert_eq!(snap.counter(Counter::ServeLaneHeavy), 3);
        assert!(snap.counter(Counter::ServeLaneLight) >= 1);
    }
}
