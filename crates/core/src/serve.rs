//! `modsoc serve`: a fault-tolerant ATPG service layer.
//!
//! The paper's modular-testing argument is about serving many cores'
//! test workloads through shared, contended infrastructure; this module
//! is that shape made literal — a long-lived daemon that accepts
//! `analyze`/`experiment` requests over hand-rolled HTTP/1.1 (plain
//! `TcpListener`, no external dependencies, per the workspace policy)
//! and multiplexes them onto a bounded worker pool. It is engineered to
//! degrade instead of falling over (see `DESIGN.md` §13):
//!
//! * **Admission control** — a bounded queue between the accept loop
//!   and the workers. Queue full or connection cap reached ⇒ the
//!   request is *shed* with `503` + `Retry-After`, never parked
//!   unboundedly.
//! * **Request coalescing** — experiment requests are keyed by the
//!   store's canonical content address ([`crate::campaign::unit_key`]);
//!   N concurrent identical requests block on one computation and all
//!   observe the same bytes. Cross-process writers are serialized by
//!   `modsoc_store`'s advisory locks.
//! * **Budget caps** — every request runs under a server-enforced
//!   [`RunBudget`] deadline, so one pathological netlist cannot starve
//!   the pool. A tripped budget is `200` with `"status":"partial"`; a
//!   deadline so tight nothing ran is `504`.
//! * **Panic isolation** — handler computations run inside
//!   [`crate::runctl::guard`]; a panic is a `500` for that request and
//!   the worker survives.
//! * **Slow-client defense** — read/write timeouts on every connection;
//!   a slowloris writer is dropped, not waited on.
//! * **Observability** — `GET /metrics` serves a live JSON snapshot of
//!   the [`modsoc_metrics`] sink (queue depth, coalesce hits, shed
//!   count, per-phase timings).
//! * **Graceful drain** — shutdown (SIGTERM/ctrl-c in the CLI, or
//!   `POST /shutdown`) stops accepting, finishes queued work, and
//!   returns; nothing is journaled half-written because every store
//!   write stays atomic + locked.
//!
//! # Endpoints
//!
//! | Method | Path        | Body                                   | Success |
//! |--------|-------------|----------------------------------------|---------|
//! | POST   | `/analyze`  | `{"soc": "<.soc text>", …}`            | 200     |
//! | POST   | `/experiment` | campaign-unit JSON (+ `timeout_ms`)  | 200     |
//! | GET    | `/metrics`  | —                                      | 200     |
//! | GET    | `/healthz`  | —                                      | 200     |
//! | POST   | `/shutdown` | —                                      | 200     |
//!
//! Overload taxonomy: `400` malformed request, `404`/`405` wrong
//! route/method, `413` body over the cap, `422` valid request the
//! engine rejects, `500` isolated panic, `503` + `Retry-After` shed at
//! admission, `504` deadline exhausted before anything was analyzable.

use crate::analysis::SocTdvAnalysis;
use crate::campaign::{build_unit_netlist, unit_key, CampaignUnit};
use crate::experiment::{run_soc_experiment_guarded, ExperimentOptions};
use crate::report::render_analyze_report;
use crate::runctl::{guard, guard_result, CoreFailure};
use crate::tdv::{core_tdv_checked, TdvOptions};
use crate::RunBudget;
use modsoc_metrics::json::{self, JsonValue};
use modsoc_metrics::{Counter, MetricsSink, MetricsSnapshot, Phase, PhaseTimer, RecordingSink};
use modsoc_soc::format::parse_soc;
use modsoc_store::ResultStore;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Hard cap on request head (request line + headers) bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// How long the accept loop sleeps between polls of a quiet listener —
/// also the latency bound on noticing a shutdown request.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads serving requests (each runs one request at a
    /// time; per-request engine parallelism is `jobs`).
    pub workers: usize,
    /// Bounded admission queue: connections accepted but not yet
    /// claimed by a worker. Beyond this, requests are shed with 503.
    pub queue_capacity: usize,
    /// Cap on connections in flight (queued + in service). Beyond
    /// this, requests are shed with 503.
    pub max_connections: usize,
    /// Request bodies over this many bytes get 413.
    pub max_body_bytes: usize,
    /// Socket read timeout: a client that stalls mid-request
    /// (slowloris) is dropped when it expires.
    pub read_timeout: Duration,
    /// Socket write timeout: a client that stops draining its response
    /// is dropped when it expires.
    pub write_timeout: Duration,
    /// Server-enforced deadline cap per request, in milliseconds. A
    /// request's own `timeout_ms` may shorten it but never extend it.
    pub max_request_ms: u64,
    /// `Retry-After` seconds advertised on shed (503) responses.
    pub retry_after_secs: u64,
    /// Engine worker threads per request (`ExperimentOptions::jobs`).
    pub jobs: usize,
    /// Content-addressed result store shared with CLI runs; also the
    /// coalescing key domain.
    pub store: Option<Arc<ResultStore>>,
    /// Whether store lookups are performed (`false` refreshes entries).
    pub store_read: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            max_connections: 256,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_request_ms: 30_000,
            retry_after_secs: 1,
            jobs: 1,
            store: None,
            store_read: true,
        }
    }
}

/// An HTTP response to one served request.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Response {
    status: u16,
    content_type: &'static str,
    retry_after: Option<u64>,
    body: String,
}

impl Response {
    fn json(status: u16, body: JsonValue) -> Response {
        Response {
            status,
            content_type: "application/json",
            retry_after: None,
            body: body.to_compact(),
        }
    }

    fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            JsonValue::Object(vec![
                ("status".to_string(), JsonValue::String("error".to_string())),
                ("error".to_string(), JsonValue::String(message.to_string())),
            ]),
        )
    }
}

/// One in-flight coalesced computation: followers wait on the condvar
/// until the leader publishes the response.
#[derive(Debug, Default)]
struct Flight {
    done: Mutex<Option<Response>>,
    cv: Condvar,
}

/// State shared between the accept loop, the workers and handles.
#[derive(Debug)]
struct Shared {
    config: ServeConfig,
    sink: RecordingSink,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    /// Connections admitted and not yet fully served.
    active: AtomicUsize,
    started: Instant,
    inflight: Mutex<HashMap<[u8; 32], Arc<Flight>>>,
}

/// Lock that survives a poisoned mutex: a panicking holder is already
/// isolated per request, and serving degraded beats deadlocking the
/// daemon.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A handle for triggering (and observing) shutdown from outside
/// [`Server::run`] — a signal-watcher thread, a test, or the
/// `POST /shutdown` endpoint.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin a graceful drain: stop accepting, finish queued work,
    /// make [`Server::run`] return. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Whether a drain has been requested.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// The `modsoc serve` daemon: admission queue → coalesce → worker pool
/// → respond. See the module docs for the architecture.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listener (port 0 picks an ephemeral port; read it back
    /// with [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                config,
                sink: RecordingSink::new(),
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
                active: AtomicUsize::new(0),
                started: Instant::now(),
                inflight: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// The bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle usable from other threads.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serve until shutdown is requested, then drain the queue and
    /// return the final metrics snapshot. The accept loop runs on the
    /// calling thread; `config.workers` request workers are scoped to
    /// this call.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures. Per-request errors
    /// never surface here — they become HTTP error responses.
    pub fn run(self) -> io::Result<MetricsSnapshot> {
        self.listener.set_nonblocking(true)?;
        let shared = &self.shared;
        std::thread::scope(|s| {
            for _ in 0..shared.config.workers.max(1) {
                s.spawn(move || worker_loop(shared));
            }
            while !shared.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _)) => admit(shared, stream),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    // Transient accept failures (EMFILE under load,
                    // aborted handshakes) must not kill the daemon.
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
            shared.queue_cv.notify_all();
        });
        Ok(self.shared.sink.snapshot())
    }
}

/// Admission control: shed with 503 when the connection cap or the
/// queue bound is hit, otherwise enqueue for a worker.
fn admit(shared: &Shared, stream: TcpStream) {
    let over_cap = shared.active.load(Ordering::SeqCst) >= shared.config.max_connections;
    if !over_cap {
        let mut queue = lock_clean(&shared.queue);
        if queue.len() < shared.config.queue_capacity {
            shared.active.fetch_add(1, Ordering::SeqCst);
            queue.push_back(stream);
            drop(queue);
            shared.queue_cv.notify_one();
            return;
        }
    }
    shed(shared, stream);
}

/// Refuse one connection with `503` + `Retry-After` (never a hang: the
/// socket gets short timeouts and is closed either way).
///
/// After writing the refusal the unread request is drained briefly:
/// closing with unread bytes in the receive buffer makes the kernel
/// send RST, which can destroy the buffered 503 before the client
/// reads it. The drain runs on the accept thread, so its timeout is
/// deliberately tiny — a well-behaved client half-closes right after
/// sending and hits EOF immediately; a stalling one costs at most
/// ~200 ms of accept latency, not a worker.
fn shed(shared: &Shared, mut stream: TcpStream) {
    shared.sink.add(Counter::ServeShed, 1);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let resp = Response {
        retry_after: Some(shared.config.retry_after_secs),
        ..Response::error(503, "server is at capacity, retry shortly")
    };
    let _ = write_response(&mut stream, &resp);
    drain_body(&mut stream);
}

/// One worker: claim queued connections until shutdown *and* the queue
/// is drained (graceful shutdown finishes admitted work).
fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = lock_clean(&shared.queue);
            loop {
                if let Some(stream) = queue.pop_front() {
                    break stream;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let (q, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue = q;
            }
        };
        // The outer guard is the worker's last line of defense: even a
        // panic outside the handler's own guard (e.g. in response
        // serialization) costs one connection, not the worker.
        if guard(|| serve_connection(shared, stream)).is_err() {
            shared.sink.add(Counter::ServePanics, 1);
        }
        shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Read, route, respond, close.
fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let _t = PhaseTimer::start(&shared.sink, Phase::ServeRequest);
    shared.sink.add(Counter::ServeRequests, 1);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let response = match read_request(&mut stream, shared.config.max_body_bytes) {
        Ok(req) => route(shared, &req),
        // The client vanished or stalled past the read timeout: there
        // is nobody worth answering. Close and move on.
        Err(ReadError::Disconnected | ReadError::Stalled) => return,
        Err(ReadError::TooLarge) => {
            // Drain what the client is still sending before answering,
            // or a client mid-`write` sees a reset instead of the 413.
            // Bounded by `DRAIN_LIMIT` and the read timeout.
            drain_body(&mut stream);
            Response::error(413, "request body exceeds the size cap")
        }
        Err(ReadError::Malformed) => Response::error(400, "malformed HTTP request"),
    };
    let _ = write_response(&mut stream, &response);
}

/// A parsed request: method, path, body.
#[derive(Debug)]
struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

#[derive(Debug)]
enum ReadError {
    /// Peer closed or reset before a full request arrived.
    Disconnected,
    /// Read timeout expired mid-request (slowloris defense).
    Stalled,
    /// Body (or head) over the configured cap.
    TooLarge,
    /// Not parseable as HTTP/1.1.
    Malformed,
}

fn read_some(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Result<(), ReadError> {
    let mut tmp = [0u8; 4096];
    match stream.read(&mut tmp) {
        Ok(0) => Err(ReadError::Disconnected),
        Ok(n) => {
            buf.extend_from_slice(&tmp[..n]);
            Ok(())
        }
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            Err(ReadError::Stalled)
        }
        Err(_) => Err(ReadError::Disconnected),
    }
}

/// Cap on how much of a rejected oversized body the server reads and
/// discards before responding 413. Past it the client just sees the
/// connection close.
const DRAIN_LIMIT: usize = 16 * 1024 * 1024;

/// Swallow the remainder of a rejected request body so the refusal can
/// be delivered to a client still mid-send. Stops at EOF (a client that
/// half-closed after sending), the read timeout, or [`DRAIN_LIMIT`].
fn drain_body(stream: &mut TcpStream) {
    let mut tmp = [0u8; 8192];
    let mut total = 0usize;
    while total < DRAIN_LIMIT {
        match stream.read(&mut tmp) {
            Ok(0) | Err(_) => return,
            Ok(n) => total += n,
        }
    }
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Read one HTTP/1.1 request (request line, headers, `Content-Length`
/// body) with hard caps on head and body size.
fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, ReadError> {
    let mut buf = Vec::new();
    let head_end = loop {
        if let Some(pos) = find_blank_line(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge);
        }
        read_some(stream, &mut buf)?;
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| ReadError::Malformed)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(ReadError::Malformed)?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().ok_or(ReadError::Malformed)?.to_string();
    let path = parts.next().ok_or(ReadError::Malformed)?.to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(ReadError::Malformed),
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| ReadError::Malformed)?;
            }
        }
    }
    if content_length > max_body {
        return Err(ReadError::TooLarge);
    }
    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        // Pipelined extra bytes: ignore them, this server is
        // one-request-per-connection.
        body.truncate(content_length);
    }
    while body.len() < content_length {
        let before = body.len();
        read_some(stream, &mut body)?;
        if body.len() == before {
            return Err(ReadError::Disconnected);
        }
        if body.len() > content_length {
            body.truncate(content_length);
        }
    }
    Ok(Request { method, path, body })
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len()
    );
    if let Some(secs) = resp.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

fn route(shared: &Shared, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::json(
            200,
            JsonValue::Object(vec![(
                "status".to_string(),
                JsonValue::String("ok".to_string()),
            )]),
        ),
        ("GET", "/metrics") => metrics_response(shared),
        ("POST", "/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue_cv.notify_all();
            Response::json(
                200,
                JsonValue::Object(vec![(
                    "status".to_string(),
                    JsonValue::String("draining".to_string()),
                )]),
            )
        }
        ("POST", "/analyze") => handle_analyze(shared, &req.body),
        ("POST", "/experiment") => handle_experiment(shared, &req.body),
        (_, "/healthz" | "/metrics" | "/shutdown" | "/analyze" | "/experiment") => {
            Response::error(405, "method not allowed for this path")
        }
        _ => Response::error(404, "unknown path"),
    }
}

/// The live `/metrics` snapshot: queue/connection gauges plus every
/// counter and phase accumulator from the serve sink.
fn metrics_response(shared: &Shared) -> Response {
    let snap = shared.sink.snapshot();
    let counters = JsonValue::Object(
        Counter::ALL
            .iter()
            .map(|c| {
                (
                    c.name().to_string(),
                    JsonValue::Number(snap.counter(*c) as f64),
                )
            })
            .collect(),
    );
    let phases = JsonValue::Object(
        Phase::ALL
            .iter()
            .filter(|p| snap.phase_calls(**p) > 0)
            .map(|p| {
                (
                    p.name().to_string(),
                    JsonValue::Object(vec![
                        (
                            "calls".to_string(),
                            JsonValue::Number(snap.phase_calls(*p) as f64),
                        ),
                        ("wall_ms".to_string(), JsonValue::Number(snap.phase_ms(*p))),
                    ]),
                )
            })
            .collect(),
    );
    let mut fields = vec![
        ("schema".to_string(), JsonValue::Number(1.0)),
        (
            "uptime_ms".to_string(),
            JsonValue::Number(shared.started.elapsed().as_secs_f64() * 1e3),
        ),
        (
            "queue_depth".to_string(),
            JsonValue::Number(lock_clean(&shared.queue).len() as f64),
        ),
        (
            "queue_capacity".to_string(),
            JsonValue::Number(shared.config.queue_capacity as f64),
        ),
        (
            "active_connections".to_string(),
            JsonValue::Number(shared.active.load(Ordering::SeqCst) as f64),
        ),
        (
            "workers".to_string(),
            JsonValue::Number(shared.config.workers as f64),
        ),
        ("counters".to_string(), counters),
        ("phases".to_string(), phases),
    ];
    if let Some(store) = &shared.config.store {
        fields.push((
            "store".to_string(),
            JsonValue::Object(vec![
                ("hits".to_string(), JsonValue::Number(store.hits() as f64)),
                (
                    "misses".to_string(),
                    JsonValue::Number(store.misses() as f64),
                ),
                (
                    "writes".to_string(),
                    JsonValue::Number(store.writes() as f64),
                ),
                (
                    "evictions".to_string(),
                    JsonValue::Number(store.evictions() as f64),
                ),
                (
                    "retries".to_string(),
                    JsonValue::Number(store.retries() as f64),
                ),
            ]),
        ));
    }
    Response::json(200, JsonValue::Object(fields))
}

fn body_str(body: &[u8]) -> Result<&str, Response> {
    std::str::from_utf8(body).map_err(|_| Response::error(400, "request body is not UTF-8"))
}

/// `POST /analyze`: run the TDV analysis on an inline `.soc` document.
///
/// Body fields: `soc` (required, the `.soc` text), `exclude_chip_pins`
/// (bool), `reuse` (0..=1), `measured_tmono` (u64), `format`
/// (`"json"` default, or `"text"` for bytes identical to
/// `modsoc analyze` stdout).
fn handle_analyze(shared: &Shared, body: &[u8]) -> Response {
    let text = match body_str(body) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let Ok(doc) = json::parse(text) else {
        return Response::error(400, "request body is not valid JSON");
    };
    let Some(soc_text) = doc.get("soc").and_then(JsonValue::as_str) else {
        return Response::error(400, "missing string field 'soc' (.soc file text)");
    };
    let exclude_chip_pins = matches!(doc.get("exclude_chip_pins"), Some(JsonValue::Bool(true)));
    let reuse = doc.get("reuse").and_then(JsonValue::as_f64);
    let measured_tmono = doc.get("measured_tmono").and_then(JsonValue::as_u64);
    let as_text = doc.get("format").and_then(JsonValue::as_str) == Some("text");
    if let Some(r) = reuse {
        if !(0.0..=1.0).contains(&r) {
            return Response::error(422, "'reuse' must be between 0 and 1");
        }
    }
    let computed = guard_result(|| -> Result<_, String> {
        let soc = parse_soc(soc_text).map_err(|e| e.to_string())?;
        let mut options = if exclude_chip_pins {
            TdvOptions::tables_1_2()
        } else {
            TdvOptions::tables_3_4()
        };
        if let Some(r) = reuse {
            options = options.with_functional_reuse(r);
        }
        for (id, core) in soc.iter() {
            if core_tdv_checked(&soc, id, &options).is_none() {
                return Err(format!(
                    "core `{}` overflows the TDV equations (corrupt counts?)",
                    core.name
                ));
            }
        }
        let analysis = match measured_tmono {
            Some(t) => SocTdvAnalysis::compute_with_measured_tmono(&soc, &options, t)
                .map_err(|e| e.to_string())?,
            None => SocTdvAnalysis::compute(&soc, &options).map_err(|e| e.to_string())?,
        };
        Ok((soc, analysis))
    });
    match computed {
        Ok((soc, analysis)) => {
            if as_text {
                Response {
                    status: 200,
                    content_type: "text/plain; charset=utf-8",
                    retry_after: None,
                    body: render_analyze_report(&soc, &analysis),
                }
            } else {
                Response::json(
                    200,
                    JsonValue::Object(vec![
                        ("status".to_string(), JsonValue::String("ok".to_string())),
                        ("soc".to_string(), JsonValue::String(soc.name().to_string())),
                        (
                            "tdv_modular".to_string(),
                            JsonValue::Number(analysis.modular().total() as f64),
                        ),
                        (
                            "tdv_monolithic".to_string(),
                            JsonValue::Number(analysis.monolithic().total() as f64),
                        ),
                        (
                            "modular_change_pct".to_string(),
                            JsonValue::Number(analysis.modular_change_pct()),
                        ),
                    ]),
                )
            }
        }
        Err(CoreFailure::Panicked(msg)) => {
            shared.sink.add(Counter::ServePanics, 1);
            Response::error(500, &format!("analysis panicked: {msg}"))
        }
        Err(failure) => Response::error(422, &failure.to_string()),
    }
}

/// `POST /experiment`: run one campaign-unit-shaped experiment
/// (`{"soc": "mini", "seed": 7}` or a generated-cores description),
/// coalesced on the unit's content address.
///
/// Extra field `timeout_ms` tightens (never extends) the server's
/// per-request deadline cap. Note the coalescing key is the *content*
/// address: like `jobs`, the timeout is excluded, so concurrent
/// identical units share one computation under the leader's budget.
fn handle_experiment(shared: &Shared, body: &[u8]) -> Response {
    let text = match body_str(body) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let Ok(doc) = json::parse(text) else {
        return Response::error(400, "request body is not valid JSON");
    };
    let timeout_ms = doc.get("timeout_ms").and_then(JsonValue::as_u64);
    let unit_doc = with_default_name(&doc);
    let unit = match CampaignUnit::from_json(&unit_doc, 0) {
        Ok(u) => u,
        Err(e) => return Response::error(422, &e.to_string()),
    };
    let options = experiment_options(shared);
    let key = unit_key(&unit, &options);
    coalesce(shared, key.0, || {
        compute_experiment(shared, &unit, &options, timeout_ms, &key.hex())
    })
}

/// Give an anonymous experiment request the default unit name — the
/// name feeds the content key, so all anonymous requests for the same
/// unit coalesce.
fn with_default_name(doc: &JsonValue) -> JsonValue {
    if let JsonValue::Object(fields) = doc {
        if !fields.iter().any(|(k, _)| k == "name") {
            let mut fields = fields.clone();
            fields.push(("name".to_string(), JsonValue::String("request".to_string())));
            return JsonValue::Object(fields);
        }
    }
    doc.clone()
}

fn experiment_options(shared: &Shared) -> ExperimentOptions {
    let mut options = ExperimentOptions::paper_tables_1_2().with_jobs(shared.config.jobs);
    if let Some(store) = &shared.config.store {
        options = options
            .with_store(Arc::clone(store))
            .with_store_read(shared.config.store_read);
    }
    options
}

/// Single-flight coalescing: the first requester for `key` computes,
/// every concurrent duplicate waits on the leader's [`Flight`] and gets
/// the same response bytes.
fn coalesce(shared: &Shared, key: [u8; 32], compute: impl FnOnce() -> Response) -> Response {
    let flight = {
        let mut inflight = lock_clean(&shared.inflight);
        match inflight.get(&key) {
            Some(f) => Some(Arc::clone(f)),
            None => {
                inflight.insert(key, Arc::new(Flight::default()));
                None
            }
        }
    };
    let Some(flight) = flight else {
        // Leader: compute, publish, wake every follower. Publication
        // happens even if compute() returns an error response — the
        // followers asked the same question and get the same answer.
        let response = compute();
        let flight = lock_clean(&shared.inflight)
            .remove(&key)
            .unwrap_or_default();
        *lock_clean(&flight.done) = Some(response.clone());
        flight.cv.notify_all();
        return response;
    };
    // Follower: wait for the leader, bounded by the server's request
    // cap plus slack for queue time. A leader that outlives the bound
    // (wedged I/O) gets this follower a 504 rather than a hang.
    shared.sink.add(Counter::ServeCoalesceHits, 1);
    let deadline =
        Instant::now() + Duration::from_millis(shared.config.max_request_ms.saturating_mul(2));
    let mut done = lock_clean(&flight.done);
    loop {
        if let Some(response) = done.clone() {
            return response;
        }
        if Instant::now() >= deadline {
            shared.sink.add(Counter::ServeDeadlineTrips, 1);
            return Response::error(504, "coalesced computation did not finish in time");
        }
        let (d, _) = flight
            .cv
            .wait_timeout(done, Duration::from_millis(50))
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        done = d;
    }
}

fn compute_experiment(
    shared: &Shared,
    unit: &CampaignUnit,
    options: &ExperimentOptions,
    timeout_ms: Option<u64>,
    key_hex: &str,
) -> Response {
    let cap = shared.config.max_request_ms;
    let ms = timeout_ms.map_or(cap, |t| t.min(cap));
    let budget = RunBudget::unlimited().with_timeout(Duration::from_millis(ms));
    let result = guard_result(|| {
        let netlist = build_unit_netlist(unit)?;
        let mut unit_options = options.clone();
        if unit.skip_monolithic {
            unit_options.monolithic = false;
        }
        run_soc_experiment_guarded(&netlist, &unit_options, &budget)
    });
    match result {
        Ok(completion) => {
            let exp = &completion.result;
            let (status, note) = if let Some(e) = &completion.exhausted {
                shared.sink.add(Counter::ServeDeadlineTrips, 1);
                ("partial", e.to_string())
            } else if completion.failed_cores().is_empty() {
                ("ok", String::new())
            } else {
                let cores: Vec<&str> = completion
                    .failed_cores()
                    .iter()
                    .map(|o| o.core.as_str())
                    .collect();
                ("degraded", format!("failed cores: {}", cores.join(", ")))
            };
            Response::json(
                200,
                JsonValue::Object(vec![
                    ("status".to_string(), JsonValue::String(status.to_string())),
                    ("unit".to_string(), JsonValue::String(unit.name.clone())),
                    ("key".to_string(), JsonValue::String(key_hex.to_string())),
                    ("t_mono".to_string(), JsonValue::Number(exp.t_mono as f64)),
                    (
                        "tdv_modular".to_string(),
                        JsonValue::Number(exp.analysis.modular().total() as f64),
                    ),
                    (
                        "tdv_monolithic".to_string(),
                        JsonValue::Number(exp.analysis.monolithic().total() as f64),
                    ),
                    (
                        "reduction_ratio".to_string(),
                        JsonValue::Number(exp.analysis.reduction_ratio()),
                    ),
                    ("note".to_string(), JsonValue::String(note)),
                ]),
            )
        }
        Err(CoreFailure::Panicked(msg)) => {
            shared.sink.add(Counter::ServePanics, 1);
            Response::error(500, &format!("experiment panicked: {msg}"))
        }
        Err(failure) => {
            // A budget so tight the run errored out before producing
            // anything analyzable is a timeout, not a client error.
            if budget.check().is_some() {
                shared.sink.add(Counter::ServeDeadlineTrips, 1);
                Response::error(504, &format!("request deadline exhausted: {failure}"))
            } else {
                Response::error(422, &failure.to_string())
            }
        }
    }
}

// ---------------------------------------------------------------------
// Minimal HTTP client — shared by `modsoc loadgen`, the CI serve gate
// and the chaos tests, so the test stack exercises the same parser
// family as the server.
// ---------------------------------------------------------------------

/// A response as seen by [`http_request`].
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header with the given (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    #[must_use]
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Issue one HTTP/1.1 request (`Connection: close`) and read the full
/// response.
///
/// # Errors
///
/// Propagates connect/read/write failures; a malformed status line is
/// reported as [`io::ErrorKind::InvalidData`].
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let sock_addr: SocketAddr = addr
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("{addr}: {e}")))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    // Half-close: tells the server the body is finished (its drain of a
    // rejected oversized body hits EOF instead of its read timeout).
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_http_response(&raw)
}

fn parse_http_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no header terminator"))?;
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("unparseable status line"))?;
    let headers = lines
        .filter_map(|l| {
            l.split_once(':')
                .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    Ok(HttpResponse {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(
        config: ServeConfig,
    ) -> (
        String,
        ServerHandle,
        std::thread::JoinHandle<MetricsSnapshot>,
    ) {
        let server = Server::bind(config).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().unwrap());
        (addr, handle, join)
    }

    fn mini_body(seed: u64) -> String {
        format!("{{\"soc\": \"mini\", \"seed\": {seed}, \"timeout_ms\": 10000}}")
    }

    #[test]
    fn healthz_metrics_and_unknown_paths() {
        let (addr, handle, join) = start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let t = Duration::from_secs(5);
        let health = http_request(&addr, "GET", "/healthz", None, t).unwrap();
        assert_eq!(health.status, 200);
        assert!(health.body_text().contains("\"ok\""));
        let metrics = http_request(&addr, "GET", "/metrics", None, t).unwrap();
        assert_eq!(metrics.status, 200);
        let doc = json::parse(&metrics.body_text()).unwrap();
        assert!(doc.get("queue_capacity").is_some());
        assert!(doc
            .get("counters")
            .and_then(|c| c.get("serve_requests"))
            .is_some());
        let missing = http_request(&addr, "GET", "/nope", None, t).unwrap();
        assert_eq!(missing.status, 404);
        let wrong = http_request(&addr, "GET", "/analyze", None, t).unwrap();
        assert_eq!(wrong.status, 405);
        handle.shutdown();
        let snap = join.join().unwrap();
        assert!(snap.counter(Counter::ServeRequests) >= 4);
    }

    #[test]
    fn analyze_text_matches_cli_rendering() {
        let (addr, handle, join) = start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let soc_text = "soc demo\ncore a i=4 o=3 b=0 s=10 t=50\ncore b i=2 o=2 b=0 s=8 t=30\n";
        let body = JsonValue::Object(vec![
            ("soc".to_string(), JsonValue::String(soc_text.to_string())),
            ("format".to_string(), JsonValue::String("text".to_string())),
        ])
        .to_compact();
        let resp = http_request(
            &addr,
            "POST",
            "/analyze",
            Some(&body),
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_text());
        let soc = parse_soc(soc_text).unwrap();
        let analysis = SocTdvAnalysis::compute(&soc, &TdvOptions::tables_3_4()).unwrap();
        assert_eq!(resp.body_text(), render_analyze_report(&soc, &analysis));
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn malformed_and_oversized_requests_get_typed_errors() {
        let (addr, handle, join) = start(ServeConfig {
            workers: 1,
            max_body_bytes: 256,
            ..ServeConfig::default()
        });
        let t = Duration::from_secs(5);
        let bad = http_request(&addr, "POST", "/analyze", Some("{not json"), t).unwrap();
        assert_eq!(bad.status, 400);
        let huge = "x".repeat(1024);
        let oversized = http_request(&addr, "POST", "/analyze", Some(&huge), t).unwrap();
        assert_eq!(oversized.status, 413);
        let unprocessable =
            http_request(&addr, "POST", "/experiment", Some("{\"soc\": \"nope\"}"), t).unwrap();
        assert_eq!(unprocessable.status, 422);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn experiment_runs_and_coalesces_identical_requests() {
        let (addr, handle, join) = start(ServeConfig {
            workers: 4,
            jobs: 1,
            ..ServeConfig::default()
        });
        let body = mini_body(7);
        let mut bodies: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let addr = addr.clone();
                    let body = body.clone();
                    s.spawn(move || {
                        http_request(
                            &addr,
                            "POST",
                            "/experiment",
                            Some(&body),
                            Duration::from_secs(30),
                        )
                        .unwrap()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    let resp = h.join().unwrap();
                    assert_eq!(resp.status, 200, "{}", resp.body_text());
                    resp.body_text()
                })
                .collect()
        });
        bodies.dedup();
        assert_eq!(
            bodies.len(),
            1,
            "identical requests must serve identical bytes"
        );
        assert!(bodies[0].contains("\"status\":\"ok\""), "{}", bodies[0]);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn shutdown_endpoint_drains_the_server() {
        let (addr, _handle, join) = start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let resp = http_request(&addr, "POST", "/shutdown", None, Duration::from_secs(5)).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body_text().contains("draining"));
        let snap = join.join().unwrap();
        assert_eq!(snap.counter(Counter::ServePanics), 0);
    }

    #[test]
    fn request_parser_rejects_garbage() {
        let raw = parse_http_response(b"HTTP/1.1 200 OK\r\ncontent-type: a\r\n\r\nhi").unwrap();
        assert_eq!(raw.status, 200);
        assert_eq!(raw.header("Content-Type"), Some("a"));
        assert_eq!(raw.body_text(), "hi");
        assert!(parse_http_response(b"garbage").is_err());
    }
}
