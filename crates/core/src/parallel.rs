//! Deterministic parallel execution: a hand-rolled scoped worker pool.
//!
//! The paper's core argument (§4–§5) is that modular testing decomposes
//! the SOC into *independent* per-core ATPG problems; wrapper/TAM
//! scheduling work treats cores as schedulable parallel jobs. This
//! module exploits that independence: a fixed-size pool of scoped
//! `std::thread` workers pulls job indices from a shared counter,
//! returns `(index, result)` pairs over an mpsc channel, and the caller
//! reassembles results **in job-index order** — so the output of a
//! parallel run is byte-identical to the sequential run at any worker
//! count. No external dependencies (vendor-only policy): plain
//! `std::thread::scope`, atomics and channels.
//!
//! Determinism contract: [`WorkerPool::map`] returns exactly
//! `items.iter().map(f)` (same values, same order) for any pure-per-item
//! `f`, regardless of the worker count or OS scheduling. Jobs that share
//! mutable state through interior mutability (e.g. a common
//! [`RunBudget`](crate::runctl::RunBudget) backtrack pool or cancel
//! flag) may observe scheduling-dependent *budget trips*; clean runs are
//! unaffected.
//!
//! A panic inside a job is contained by the pool (other jobs still run)
//! and re-raised on the calling thread after the scope joins, preserving
//! `catch_unwind` semantics for callers that guard the whole map.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use modsoc_metrics::{Counter, MetricsSink, NullSink};

/// Number of usable hardware threads (`1` when detection fails).
#[must_use]
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolve a `--jobs`-style request: `0` means "auto" (all available
/// hardware threads); anything else is used as given.
#[must_use]
pub fn effective_jobs(requested: usize) -> usize {
    if requested == 0 {
        available_jobs()
    } else {
        requested
    }
}

/// A fixed-width scoped worker pool.
///
/// The pool is a *policy* object (how many workers to use); threads are
/// spawned per [`WorkerPool::map`] call inside a `std::thread::scope`,
/// so borrowed data can flow into jobs without `'static` bounds and no
/// idle threads outlive a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    jobs: usize,
}

impl Default for WorkerPool {
    fn default() -> WorkerPool {
        WorkerPool::new(1)
    }
}

impl WorkerPool {
    /// A pool with `jobs` workers (`0` means auto — all hardware
    /// threads; clamped to at least 1).
    #[must_use]
    pub fn new(jobs: usize) -> WorkerPool {
        WorkerPool {
            jobs: effective_jobs(jobs).max(1),
        }
    }

    /// A pool sized to the available hardware parallelism.
    #[must_use]
    pub fn auto() -> WorkerPool {
        WorkerPool::new(0)
    }

    /// Worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Map `f` over `items` on the pool, returning results in item
    /// order — byte-identical to `items.iter().enumerate().map(...)`.
    ///
    /// Workers claim indices from a shared atomic counter (dynamic load
    /// balancing: a slow core does not serialize the rest) and send
    /// `(index, result)` pairs back over a channel; the merge step
    /// reorders by index.
    ///
    /// # Panics
    ///
    /// If `f` panics for some item, every other in-flight job still
    /// completes, then the payload of the lowest-index panic is re-raised
    /// here (deterministic choice when several jobs panic).
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        self.map_with_sink(items, &NullSink, f)
    }

    /// [`WorkerPool::map`] reporting pool utilization into a
    /// [`MetricsSink`]: the submitted task count lands on the
    /// deterministic `pool_tasks` counter (and panics that escape jobs on
    /// `pool_panics`), while each worker contributes a
    /// scheduling-dependent row (tasks claimed, busy wall time). The
    /// mapped results are byte-identical to [`WorkerPool::map`].
    ///
    /// # Panics
    ///
    /// Same contract as [`WorkerPool::map`].
    pub fn map_with_sink<I, T, F>(&self, items: &[I], sink: &dyn MetricsSink, f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        sink.add(Counter::PoolTasks, items.len() as u64);
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            // Sequential fast path: no threads, no channel.
            let start = sink.enabled().then(Instant::now);
            let out: Vec<T> = items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
            if let Some(start) = start {
                let (nanos, saturated) = match u64::try_from(start.elapsed().as_nanos()) {
                    Ok(n) => (n, false),
                    Err(_) => (u64::MAX, true),
                };
                sink.worker(0, items.len() as u64, nanos, saturated);
            }
            return out;
        }

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<T>)>();
        let mut slots: Vec<Option<std::thread::Result<T>>> =
            (0..items.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut claimed = 0u64;
                    let mut busy_nanos = 0u64;
                    let mut saturated = false;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        // Busy time is job execution only; the gap to the
                        // pool's wall time is the worker's idle share.
                        let start = sink.enabled().then(Instant::now);
                        let result = catch_unwind(AssertUnwindSafe(|| f(i, item)));
                        if let Some(start) = start {
                            claimed += 1;
                            let job_nanos = match u64::try_from(start.elapsed().as_nanos()) {
                                Ok(n) => n,
                                Err(_) => {
                                    saturated = true;
                                    u64::MAX
                                }
                            };
                            let (sum, overflow) = busy_nanos.overflowing_add(job_nanos);
                            busy_nanos = if overflow {
                                saturated = true;
                                u64::MAX
                            } else {
                                sum
                            };
                        }
                        if tx.send((i, result)).is_err() {
                            break; // receiver gone: scope is unwinding
                        }
                    }
                    if sink.enabled() {
                        sink.worker(w, claimed, busy_nanos, saturated);
                    }
                });
            }
            drop(tx);
            for (i, result) in rx {
                slots[i] = Some(result);
            }
        });

        let mut out = Vec::with_capacity(items.len());
        let mut panic_payload = None;
        let mut panics = 0u64;
        for slot in slots {
            match slot.expect("every job index reports exactly once") {
                Ok(v) => out.push(v),
                Err(payload) => {
                    panics += 1;
                    if panic_payload.is_none() {
                        panic_payload = Some(payload);
                    }
                }
            }
        }
        if panics > 0 {
            sink.add(Counter::PoolPanics, panics);
        }
        if let Some(payload) = panic_payload {
            resume_unwind(payload);
        }
        out
    }

    /// [`WorkerPool::map`] over an index range instead of a slice —
    /// convenience for seeded sweeps (`f(i)` for `i` in `0..n`).
    pub fn map_indices<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let indices: Vec<usize> = (0..n).collect();
        self.map(&indices, |_, &i| f(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_order_at_any_width() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for jobs in [1, 2, 3, 4, 7, 64] {
            let pool = WorkerPool::new(jobs);
            let got = pool.map(&items, |_, &x| x * x + 1);
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn map_indices_matches_serial() {
        let pool = WorkerPool::new(4);
        assert_eq!(
            pool.map_indices(10, |i| i * 3),
            vec![0, 3, 6, 9, 12, 15, 18, 21, 24, 27]
        );
        assert_eq!(pool.map_indices(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.map(&[] as &[u32], |_, &x| x), Vec::<u32>::new());
        assert_eq!(pool.map(&[5u32], |i, &x| (i, x)), vec![(0, 5)]);
    }

    #[test]
    fn all_workers_participate_on_slow_jobs() {
        // With 4 workers and 8 jobs that each sleep briefly, at least two
        // distinct threads must have executed jobs (smoke test that the
        // pool actually fans out).
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let pool = WorkerPool::new(4);
        pool.map_indices(8, |i| {
            std::thread::sleep(std::time::Duration::from_millis(20));
            seen.lock().unwrap().insert(std::thread::current().id());
            i
        });
        assert!(seen.lock().unwrap().len() >= 2);
    }

    #[test]
    fn zero_means_auto_and_clamps_to_one() {
        assert!(WorkerPool::new(0).jobs() >= 1);
        assert_eq!(WorkerPool::auto().jobs(), available_jobs());
        assert_eq!(effective_jobs(3), 3);
        assert!(effective_jobs(0) >= 1);
    }

    #[test]
    fn panic_in_job_is_reraised_after_siblings_finish() {
        let completed = AtomicU64::new(0);
        let pool = WorkerPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map_indices(16, |i| {
                if i == 5 {
                    panic!("job 5 exploded");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                i
            })
        }));
        let payload = result.expect_err("panic propagates");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "job 5 exploded");
        // Every non-panicking sibling still ran.
        assert_eq!(completed.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn lowest_index_panic_wins_deterministically() {
        let pool = WorkerPool::new(4);
        for _ in 0..8 {
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.map_indices(12, |i| {
                    if i == 3 || i == 9 {
                        panic!("boom {i}");
                    }
                    i
                })
            }));
            let payload = result.expect_err("panic propagates");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert_eq!(msg, "boom 3");
        }
    }
}
