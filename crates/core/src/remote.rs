//! HTTP transport for the result store: a [`StoreBackend`] speaking to
//! the `/store/*` endpoints of a `modsoc serve --store` daemon.
//!
//! This is the client half of the distributed-campaign story: wrap an
//! [`HttpBackend`] in a [`ResultStore`](modsoc_store::ResultStore) and
//! every `get`/`put`/journal/claim the campaign runner issues travels
//! over the wire instead of the local filesystem — with the *same*
//! read-side corruption taxonomy, because validation lives in the
//! wrapper, not the transport. A byte flip on the server's disk is
//! detected by the client's checksum pass, reported back as a
//! `POST /store/evict`, and recomputed; never trusted, never a crash.
//!
//! Transport robustness mirrors `modsoc loadgen`'s client discipline:
//!
//! * one persistent keep-alive [`HttpClient`] (reconnect-once on a
//!   stale socket) behind a mutex;
//! * bounded retries with jittered exponential backoff on transport
//!   errors — a daemon restart mid-campaign costs a few hundred
//!   milliseconds, not the run;
//! * `503` + `Retry-After` honored: a shedding daemon's hint bounds the
//!   sleep before the retry.

use crate::serve::{HttpClient, HttpResponse};
use modsoc_metrics::json::{self, JsonValue};
use modsoc_store::backend::{ClaimAction, ClaimOutcome, ClaimRequest, EntryMeta, RawDoc};
use modsoc_store::{StoreBackend, StoreError};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Attempts (initial try + retries) before a transport failure is
/// final — the same bound `modsoc loadgen` uses.
const REMOTE_ATTEMPTS: u32 = 5;

/// Cap on one Retry-After sleep, so a generous server hint cannot
/// stall a campaign worker for seconds per request.
const RETRY_AFTER_CAP_MS: u64 = 400;

fn other_err(url: &str, message: String) -> StoreError {
    StoreError::Io {
        path: PathBuf::from(url),
        source: io::Error::other(message),
    }
}

/// A [`StoreBackend`] over the `/store/*` endpoints of one
/// `modsoc serve --store` daemon.
#[derive(Debug)]
pub struct HttpBackend {
    url: String,
    client: Mutex<HttpClient>,
    rng: AtomicU64,
}

impl HttpBackend {
    /// Connect to a serve daemon at `url` (`http://host:port` or bare
    /// `host:port`) and verify it actually fronts a store: a probe
    /// `GET /store/get` must answer the store protocol, not the 422
    /// that means the daemon was started without `--store`.
    ///
    /// # Errors
    ///
    /// An unparseable address, an unreachable daemon, or a daemon
    /// without a store.
    pub fn connect(url: &str, timeout: Duration) -> io::Result<HttpBackend> {
        let addr = url
            .strip_prefix("http://")
            .unwrap_or(url)
            .trim_end_matches('/');
        let backend = HttpBackend {
            url: format!("http://{addr}"),
            client: Mutex::new(HttpClient::new(addr, timeout)?),
            rng: AtomicU64::new(
                std::time::UNIX_EPOCH
                    .elapsed()
                    .map(|d| d.subsec_nanos() as u64)
                    .unwrap_or(1)
                    | 1,
            ),
        };
        let probe = format!("/store/get?key={}", "0".repeat(64));
        let (resp, _) = backend
            .send("GET", &probe, None)
            .map_err(|e| io::Error::other(format!("{}: {e}", backend.url)))?;
        if resp.status == 422 {
            return Err(io::Error::other(format!(
                "{}: daemon has no --store ({})",
                backend.url,
                resp.body_text()
            )));
        }
        Ok(backend)
    }

    /// The base URL this backend speaks to.
    #[must_use]
    pub fn url(&self) -> &str {
        &self.url
    }

    fn next_jitter(&self, bound: u64) -> u64 {
        // xorshift64, same family as the store lock's backoff jitter.
        let mut x = self.rng.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.store(x, Ordering::Relaxed);
        x % bound.max(1)
    }

    /// One logical request with the transport retry policy: transport
    /// errors and 503s are retried with bounded jittered backoff
    /// (honoring `Retry-After` on the 503s); any other response is
    /// returned as-is. The second tuple element is how many retries
    /// were spent (reported upstream as `store_retries`).
    fn send(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(HttpResponse, u64), StoreError> {
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..REMOTE_ATTEMPTS {
            if attempt > 0 {
                let backoff = (1u64 << attempt.min(4)) + self.next_jitter(4);
                std::thread::sleep(Duration::from_millis(backoff));
            }
            let result = {
                let mut client = self
                    .client
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                client.request(method, path, body)
            };
            match result {
                Ok(resp) if resp.status == 503 => {
                    // Shed: honor the daemon's Retry-After hint
                    // (capped) plus jitter, then go around.
                    let hint_ms = resp
                        .header("retry-after")
                        .and_then(|v| v.parse::<u64>().ok())
                        .map_or(50, |s| (s * 1000).min(RETRY_AFTER_CAP_MS));
                    std::thread::sleep(Duration::from_millis(hint_ms + self.next_jitter(200)));
                    last_err = Some(io::Error::other("503 shed"));
                }
                Ok(resp) => return Ok((resp, u64::from(attempt))),
                Err(e) => last_err = Some(e),
            }
        }
        Err(StoreError::Io {
            path: PathBuf::from(&self.url),
            source: last_err.unwrap_or_else(|| io::Error::other("request failed")),
        })
    }

    /// Map a GET of a raw document to the [`RawDoc`] taxonomy: 200 is
    /// the text, 404 is a miss, anything else (including transport
    /// exhaustion) is unreadable — which the consuming [`ResultStore`]
    /// treats as eviction + recompute, never a crash.
    fn fetch_doc(&self, path: &str) -> RawDoc {
        match self.send("GET", path, None) {
            Ok((resp, _)) if resp.status == 200 => RawDoc::Present(resp.body_text()),
            Ok((resp, _)) if resp.status == 404 => RawDoc::Missing,
            Ok((resp, _)) => RawDoc::Unreadable(format!("remote status {}", resp.status)),
            Err(e) => RawDoc::Unreadable(format!("remote unreachable: {e}")),
        }
    }

    fn post_evict(&self, target: (&str, &str), why: &str) -> bool {
        let (field, value) = target;
        let body = JsonValue::Object(vec![
            (field.to_string(), JsonValue::String(value.to_string())),
            ("why".to_string(), JsonValue::String(why.to_string())),
        ])
        .to_compact();
        matches!(self.send("POST", "/store/evict", Some(&body)), Ok((resp, _)) if resp.status == 200)
    }
}

impl StoreBackend for HttpBackend {
    fn describe(&self) -> String {
        self.url.clone()
    }

    fn is_remote(&self) -> bool {
        true
    }

    fn local_root(&self) -> Option<&Path> {
        None
    }

    fn load_entry(&self, key_hex: &str) -> RawDoc {
        self.fetch_doc(&format!("/store/get?key={key_hex}"))
    }

    fn store_entry(&self, key_hex: &str, doc: &str) -> Result<u64, StoreError> {
        let (resp, retries) = self.send("POST", "/store/put", Some(doc))?;
        if resp.status != 200 {
            return Err(other_err(
                &self.url,
                format!(
                    "put {key_hex}: status {}: {}",
                    resp.status,
                    resp.body_text()
                ),
            ));
        }
        Ok(retries)
    }

    fn remove_entry(&self, key_hex: &str, why: &str) -> bool {
        let removed = self.post_evict(("key", key_hex), why);
        if removed {
            eprintln!("store: evicting {}/{key_hex} ({why})", self.url);
        }
        removed
    }

    fn entry_meta(&self) -> Result<Vec<EntryMeta>, StoreError> {
        Err(other_err(
            &self.url,
            "remote stores cannot be enumerated; run gc/verify where the bytes live".to_string(),
        ))
    }

    fn verify_all(&self) -> Result<(usize, usize), StoreError> {
        Err(other_err(
            &self.url,
            "remote stores cannot be enumerated; run gc/verify where the bytes live".to_string(),
        ))
    }

    fn load_journal(&self, stem: &str) -> RawDoc {
        self.fetch_doc(&format!("/store/journal?name={stem}"))
    }

    fn merge_journal(&self, stem: &str, entry_doc: &str) -> Result<(String, u64), StoreError> {
        let entry = json::parse(entry_doc)
            .map_err(|e| other_err(&self.url, format!("journal entry doc: {e}")))?;
        let body = JsonValue::Object(vec![
            ("name".to_string(), JsonValue::String(stem.to_string())),
            ("entry".to_string(), entry),
        ])
        .to_compact();
        let (resp, retries) = self.send("POST", "/store/journal", Some(&body))?;
        if resp.status != 200 {
            return Err(other_err(
                &self.url,
                format!(
                    "journal merge {stem}: status {}: {}",
                    resp.status,
                    resp.body_text()
                ),
            ));
        }
        Ok((resp.body_text(), retries))
    }

    fn remove_journal(&self, stem: &str, why: &str) -> bool {
        let removed = self.post_evict(("journal", stem), why);
        if removed {
            eprintln!("store: evicting journal {}/{stem} ({why})", self.url);
        }
        removed
    }

    fn claim(&self, req: &ClaimRequest<'_>) -> Result<ClaimOutcome, StoreError> {
        let action = match req.action {
            ClaimAction::Acquire => "acquire",
            ClaimAction::Renew => "renew",
            ClaimAction::Release => "release",
        };
        let body = JsonValue::Object(vec![
            (
                "journal".to_string(),
                JsonValue::String(req.journal.to_string()),
            ),
            ("unit".to_string(), JsonValue::String(req.unit.to_string())),
            ("key".to_string(), JsonValue::String(req.key.to_string())),
            (
                "owner".to_string(),
                JsonValue::String(req.owner.to_string()),
            ),
            (
                "lease_ms".to_string(),
                JsonValue::Number(req.lease.as_millis() as f64),
            ),
            ("action".to_string(), JsonValue::String(action.to_string())),
        ])
        .to_compact();
        let (resp, _) = self.send("POST", "/store/claim", Some(&body))?;
        if resp.status != 200 {
            return Err(other_err(
                &self.url,
                format!(
                    "claim {}/{}: status {}: {}",
                    req.journal,
                    req.unit,
                    resp.status,
                    resp.body_text()
                ),
            ));
        }
        let doc = json::parse(&resp.body_text())
            .map_err(|e| other_err(&self.url, format!("claim response: {e}")))?;
        let outcome = doc
            .get("outcome")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_string();
        match outcome.as_str() {
            "acquired" => Ok(ClaimOutcome::Acquired {
                broke_stale: doc.get("broke_stale").and_then(JsonValue::as_bool) == Some(true),
            }),
            "held" => Ok(ClaimOutcome::Held {
                owner: doc
                    .get("owner")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string(),
            }),
            "released" => Ok(ClaimOutcome::Released),
            "not_owner" => Ok(ClaimOutcome::NotOwner),
            other => Err(other_err(
                &self.url,
                format!("claim response outcome {other:?}"),
            )),
        }
    }
}
