//! Plain-text table renderers matching the paper's layouts.

use std::fmt::Write as _;

use modsoc_soc::Soc;

use crate::analysis::SocTdvAnalysis;
use crate::metrics::{Counter, RunMetrics};
use crate::runctl::{CoreOutcome, CoreOutcomeKind};

/// Format an integer with thousands separators (`28538030` →
/// `28,538,030`), as the paper's tables print volumes.
#[must_use]
pub fn fmt_u64(v: u64) -> String {
    let digits = v.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// Render the full `modsoc analyze` report — SOC summary line, per-core
/// table, modular-change footer — byte-identical to what the CLI's
/// strict path writes to stdout. `modsoc serve`'s `/analyze` endpoint
/// with `"format": "text"` returns exactly this string, which is what
/// the CI serve gate byte-diffs against a CLI run.
#[must_use]
pub fn render_analyze_report(soc: &Soc, analysis: &SocTdvAnalysis) -> String {
    format!(
        "{soc}\n{}\nmodular change vs optimistic monolithic: {:+.1}%\n",
        render_core_table(soc, analysis),
        analysis.modular_change_pct()
    )
}

/// Render a Tables 1–3 style per-core TDV table.
///
/// Columns: core, I, O, B, S, T, ISOCOST, TDV; followed by the SOC
/// modular total, the monolithic row(s), and the penalty/benefit
/// decomposition.
#[must_use]
pub fn render_core_table(soc: &Soc, analysis: &SocTdvAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>6} {:>5} {:>7} {:>7} {:>8} {:>15}",
        "core", "I", "O", "B", "S", "T", "ISOCOST", "TDV"
    );
    for ((_, spec), row) in soc.iter().zip(analysis.rows()) {
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>6} {:>5} {:>7} {:>7} {:>8} {:>15}",
            spec.name,
            spec.inputs,
            spec.outputs,
            spec.bidirs,
            spec.scan_cells,
            spec.patterns,
            row.isocost,
            fmt_u64(row.volume.total())
        );
    }
    let _ = writeln!(
        out,
        "{:<16} {:>65}",
        "SOC (modular)",
        fmt_u64(analysis.modular().total())
    );
    if analysis.t_mono_is_measured() {
        let _ = writeln!(
            out,
            "{:<16} T={:<7} {:>48}",
            "Mono",
            analysis.t_mono(),
            fmt_u64(analysis.monolithic().total())
        );
    }
    let _ = writeln!(
        out,
        "{:<16} {:>65}",
        "Mono opt",
        fmt_u64(analysis.monolithic_optimistic().total())
    );
    let _ = writeln!(
        out,
        "TDVpenalty = {}   TDVbenefit = {}",
        fmt_u64(analysis.penalty()),
        fmt_u64(analysis.benefit())
    );
    if analysis.t_mono_is_measured() {
        let _ = writeln!(
            out,
            "reduction ratio = {:.2}   pessimistic ratio = {:.2}   pessimism = {:.1}x",
            analysis.reduction_ratio(),
            analysis.pessimistic_reduction_ratio(),
            analysis.pessimism_factor()
        );
    }
    out
}

/// Render a Table 4 style survey over several analysed SOCs.
///
/// Columns: SOC, cores, normalized std-dev of pattern counts, optimistic
/// monolithic TDV, penalty (bits and %), benefit (bits and %), modular
/// TDV (bits and %); followed by the column averages the paper reports.
#[must_use]
pub fn render_survey(analyses: &[SocTdvAnalysis]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>5} {:>6} {:>16} {:>16} {:>8} {:>18} {:>8} {:>16} {:>8}",
        "SOC", "cores", "nstd", "TDVopt_mono", "penalty", "%", "benefit", "%", "TDVmodular", "%"
    );
    let mut sums = (0.0f64, 0.0f64, 0.0f64);
    for a in analyses {
        let st = a.pattern_stats();
        let _ = writeln!(
            out,
            "{:<10} {:>5} {:>6.2} {:>16} {:>16} {:>+7.1}% {:>18} {:>+7.1}% {:>16} {:>+7.1}%",
            a.soc_name(),
            st.n,
            st.normalized_stdev(),
            fmt_u64(a.monolithic_optimistic().total()),
            fmt_u64(a.penalty()),
            a.penalty_pct(),
            fmt_u64(a.benefit()),
            a.benefit_pct(),
            fmt_u64(a.modular().total()),
            a.modular_change_pct(),
        );
        sums.0 += a.penalty_pct();
        sums.1 += a.benefit_pct();
        sums.2 += a.modular_change_pct();
    }
    if !analyses.is_empty() {
        let n = analyses.len() as f64;
        let _ = writeln!(
            out,
            "{:<10} {:>46} {:>+7.1}% {:>27.1}% {:>25.1}%",
            "Average",
            "",
            sums.0 / n,
            sums.1 / n,
            sums.2 / n
        );
    }
    out
}

/// Render the per-core analysis as CSV (header + one row per core +
/// summary rows), for spreadsheets and plotting scripts.
#[must_use]
pub fn render_core_csv(soc: &Soc, analysis: &SocTdvAnalysis) -> String {
    let mut out = String::from("core,inputs,outputs,bidirs,scan,patterns,isocost,tdv\n");
    for ((_, spec), row) in soc.iter().zip(analysis.rows()) {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            spec.name,
            spec.inputs,
            spec.outputs,
            spec.bidirs,
            spec.scan_cells,
            spec.patterns,
            row.isocost,
            row.volume.total()
        );
    }
    let _ = writeln!(out, "SOC_modular,,,,,,,{}", analysis.modular().total());
    let _ = writeln!(
        out,
        "mono_optimistic,,,,,{},,{}",
        if analysis.t_mono_is_measured() {
            String::new()
        } else {
            analysis.t_mono().to_string()
        },
        analysis.monolithic_optimistic().total()
    );
    if analysis.t_mono_is_measured() {
        let _ = writeln!(
            out,
            "mono_measured,,,,,{},,{}",
            analysis.t_mono(),
            analysis.monolithic().total()
        );
    }
    out
}

/// Render the survey as CSV: one row per SOC with the Table 4 columns.
#[must_use]
pub fn render_survey_csv(analyses: &[SocTdvAnalysis]) -> String {
    let mut out = String::from(
        "soc,cores,norm_stdev,tdv_opt_mono,penalty,penalty_pct,benefit,benefit_pct,tdv_modular,modular_pct\n",
    );
    for a in analyses {
        let st = a.pattern_stats();
        let _ = writeln!(
            out,
            "{},{},{:.4},{},{},{:.2},{},{:.2},{},{:.2}",
            a.soc_name(),
            st.n,
            st.normalized_stdev(),
            a.monolithic_optimistic().total(),
            a.penalty(),
            a.penalty_pct(),
            a.benefit(),
            a.benefit_pct(),
            a.modular().total(),
            a.modular_change_pct(),
        );
    }
    out
}

/// Render the per-core outcome column of a guarded run: one row per
/// core with `ok` / `partial` / `FAILED`, the patterns it contributed,
/// and the diagnostic for anything that did not complete.
#[must_use]
pub fn render_outcome_table(outcomes: &[CoreOutcome]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<16} {:>8} {:>9}  detail", "core", "outcome", "T");
    for o in outcomes {
        let patterns = o
            .patterns
            .map_or_else(|| "-".to_string(), |t| t.to_string());
        let detail = match &o.kind {
            CoreOutcomeKind::Complete => String::new(),
            CoreOutcomeKind::Partial(e) => e.to_string(),
            CoreOutcomeKind::Failed(f) => f.to_string(),
        };
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>9}  {}",
            o.core,
            o.kind.label(),
            patterns,
            detail
        );
    }
    out
}

/// Render a per-core metrics breakdown from a [`RunMetrics`] report:
/// one row per core (monolithic pseudo-core included) with the headline
/// engine counters and that core's accumulated phase wall time, then a
/// totals row. Wall-time columns are scheduling-dependent; everything
/// else is deterministic.
#[must_use]
pub fn render_metrics_table(metrics: &RunMetrics) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>9} {:>9} {:>11} {:>13} {:>10}",
        "core", "outcome", "T", "podem", "backtracks", "sim_evals", "wall_ms"
    );
    let row_wall_ms =
        |snap: &crate::metrics::MetricsSnapshot| snap.phase_nanos.iter().sum::<u64>() as f64 / 1e6;
    for core in &metrics.cores {
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>9} {:>9} {:>11} {:>13} {:>10.1}",
            core.core,
            core.outcome,
            core.patterns
                .map_or_else(|| "-".to_string(), |t| t.to_string()),
            core.snapshot.counter(Counter::PodemCalls),
            core.snapshot.counter(Counter::PodemBacktracks),
            fmt_u64(core.snapshot.counter(Counter::FaultSimFaultEvals)),
            row_wall_ms(&core.snapshot)
        );
    }
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>9} {:>9} {:>11} {:>13} {:>10.1}",
        "(totals)",
        "-",
        metrics.totals.counter(Counter::PatternsFinal),
        metrics.totals.counter(Counter::PodemCalls),
        metrics.totals.counter(Counter::PodemBacktracks),
        fmt_u64(metrics.totals.counter(Counter::FaultSimFaultEvals)),
        metrics.wall_ms
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runctl::{analyze_soc_guarded, CoreFailure};
    use crate::tdv::TdvOptions;
    use modsoc_soc::{itc02, CoreSpec};

    #[test]
    fn thousands_separators() {
        assert_eq!(fmt_u64(0), "0");
        assert_eq!(fmt_u64(999), "999");
        assert_eq!(fmt_u64(1_000), "1,000");
        assert_eq!(fmt_u64(28_538_030), "28,538,030");
        assert_eq!(fmt_u64(144_302_301_808), "144,302,301,808");
    }

    #[test]
    fn core_table_contains_paper_numbers() {
        let soc = itc02::soc1();
        let a = SocTdvAnalysis::compute_with_measured_tmono(
            &soc,
            &TdvOptions::tables_1_2(),
            itc02::SOC1_MEASURED_TMONO,
        )
        .unwrap();
        let text = render_core_table(&soc, &a);
        assert!(text.contains("4,992"), "{text}");
        assert!(text.contains("45,183"));
        assert!(text.contains("129,816"));
        assert!(text.contains("51,085"));
        assert!(text.contains("2.87"));
    }

    #[test]
    fn survey_renders_rows_and_average() {
        let soc = itc02::p34392();
        let a = SocTdvAnalysis::compute(&soc, &TdvOptions::tables_3_4()).unwrap();
        let text = render_survey(&[a]);
        assert!(text.contains("p34392"));
        assert!(text.contains("522,738,000"));
        assert!(text.contains("Average"));
    }

    #[test]
    fn empty_survey_is_header_only() {
        let text = render_survey(&[]);
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn outcome_table_shows_failures_inline() {
        let mut soc = modsoc_soc::Soc::new("mixed");
        soc.add_core(CoreSpec::leaf("healthy", 4, 3, 0, 20, 100))
            .unwrap();
        soc.add_core(CoreSpec::leaf("poisoned", 1, 1, 0, u64::MAX, u64::MAX))
            .unwrap();
        let completion = analyze_soc_guarded(&soc, &TdvOptions::tables_1_2());
        let text = render_outcome_table(&completion.per_core_outcomes);
        assert!(text.contains("healthy"), "{text}");
        assert!(text.contains("ok"), "{text}");
        assert!(text.contains("FAILED"), "{text}");
        assert!(text.contains("overflow"), "{text}");
        let failed = completion.failed_cores();
        assert!(matches!(
            failed[0].kind,
            CoreOutcomeKind::Failed(CoreFailure::Overflow)
        ));
    }

    #[test]
    fn csv_exports_are_parseable() {
        let soc = itc02::soc1();
        let a = SocTdvAnalysis::compute_with_measured_tmono(
            &soc,
            &TdvOptions::tables_1_2(),
            itc02::SOC1_MEASURED_TMONO,
        )
        .unwrap();
        let csv = render_core_csv(&soc, &a);
        let header_fields = csv.lines().next().unwrap().split(',').count();
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), header_fields, "{line}");
        }
        assert!(csv.contains("core1_s713,35,23,0,19,52,58,4992"));
        assert!(csv.contains("SOC_modular,,,,,,,45183"));
        assert!(csv.contains("mono_measured,,,,,216,,129816"));

        let survey = render_survey_csv(&[a]);
        assert!(survey.lines().nth(1).unwrap().starts_with("SOC1,"));
        assert_eq!(
            survey.lines().next().unwrap().split(',').count(),
            survey.lines().nth(1).unwrap().split(',').count()
        );
    }
}
