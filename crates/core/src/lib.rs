//! Test data volume analysis of modular vs monolithic SOC testing.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Sinanoglu & Marinissen, *DATE 2008*): a quantitative comparison of
//! the test data volume (TDV) needed to test a flattened SOC
//! monolithically versus testing the same SOC modularly through
//! IEEE 1500-style wrappers.
//!
//! * [`tdv`] — Equations 1–8: monolithic TDV, optimistic monolithic TDV,
//!   per-core modular TDV with the hierarchical wrapper cost `ISOCOST`,
//!   and the penalty/benefit decomposition (with an *exact* variant of
//!   Equation 6 — see `DESIGN.md` §3 for why the printed equation leaves
//!   a chip-pin residual).
//! * [`analysis`] — [`SocTdvAnalysis`]: computes everything for a
//!   [`modsoc_soc::Soc`] and exposes reduction ratios, pessimism factors
//!   and per-core rows.
//! * [`reconstruct`] — inverts the equations to synthesise per-core data
//!   matching the paper's published Table 4 aggregates for the nine
//!   ITC'02 SOCs whose `.soc` files are unavailable here.
//! * [`experiment`] — the live pipeline: generate SOC netlists
//!   (`modsoc-circuitgen`), run ATPG per core and on the flattened
//!   design (`modsoc-atpg`), and feed the measured pattern counts into
//!   the analysis — the Tables 1–2 experiments end to end.
//! * [`report`] — plain-text renderers for each of the paper's tables.
//! * [`runctl`] — run control: [`RunBudget`] deadlines/cancellation,
//!   panic isolation, and per-core graceful degradation so one poisoned
//!   core cannot take down a whole experiment.
//! * [`parallel`] — a deterministic scoped worker pool
//!   ([`WorkerPool`]): per-core ATPG jobs, fault-list shards and chaos
//!   cases fan out across `std::thread` workers with an order-preserving
//!   merge, so reports are byte-identical at any `--jobs` value.
//! * [`chaos`] — a fault-injection harness that corrupts `.bench`/`.soc`
//!   inputs and injects budget exhaustion, asserting the pipeline always
//!   terminates with a typed error or partial result.
//! * [`metrics`] — phase-level observability: per-core counter/timer
//!   sinks threaded through the engine and pipeline, assembled into a
//!   serializable [`metrics::RunMetrics`] report whose deterministic
//!   sections are byte-identical at any `--jobs` value (the CI
//!   determinism and perf-regression gates consume these reports).
//! * [`serve`] — the `modsoc serve` daemon: a fault-tolerant HTTP
//!   service layer over the pipeline with bounded admission queues,
//!   content-address request coalescing, per-request budget caps,
//!   panic isolation, load shedding (`503` + `Retry-After`) and
//!   graceful drain — see `DESIGN.md` §13.
//! * [`campaign`] — resumable experiment campaigns: a JSON spec of SOC
//!   experiment units run through the pipeline, journaling per-unit
//!   completion to a content-addressed result store
//!   (`modsoc-store`) so an interrupted campaign resumes where it
//!   stopped instead of recomputing finished units.
//!
//! # Example
//!
//! Reproduce the worked example of the paper's Figures 1–2 (three cones
//! with 200/300/400 partial patterns: 20,000 stimulus bits monolithic vs
//! 15,000 modular — a 25% reduction):
//!
//! ```
//! use modsoc_soc::{CoreSpec, Soc};
//! use modsoc_core::{SocTdvAnalysis, TdvOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut soc = Soc::new("fig1");
//! for (name, ffs, patterns) in [("A", 20, 200), ("B", 10, 300), ("C", 20, 400)] {
//!     soc.add_core(CoreSpec::leaf(name, 0, 0, 0, ffs, patterns))?;
//! }
//! let analysis = SocTdvAnalysis::compute(&soc, &TdvOptions::default())?;
//! assert_eq!(analysis.monolithic_optimistic().stimulus, 20_000);
//! assert_eq!(analysis.modular().stimulus, 15_000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod campaign;
pub mod chaos;
pub mod error;
pub mod experiment;
pub mod metrics;
pub mod parallel;
pub mod reconstruct;
pub mod remote;
pub mod report;
pub mod runctl;
pub mod serve;
pub mod tdv;
pub mod timecost;

pub use analysis::{CoreTdvRow, SocTdvAnalysis};
pub use campaign::{
    run_campaign, run_campaign_claimed, CampaignReport, CampaignSpec, ClaimOptions, UnitStatus,
};
pub use error::AnalysisError;
pub use parallel::WorkerPool;
pub use remote::HttpBackend;
pub use runctl::{
    BudgetExhausted, Completion, CoreFailure, CoreOutcome, CoreOutcomeKind, ExhaustReason,
    RunBudget,
};
pub use tdv::{ChipPinPolicy, TdvOptions, TdvVolume};
