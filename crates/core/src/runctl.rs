//! Run control: budgets, panic isolation and graceful per-core
//! degradation for the experiment pipeline.
//!
//! The paper's pitch for modular testing is *independence*: each core is
//! tested on its own terms. This module gives the pipeline the matching
//! failure semantics — one poisoned core (absurd `.soc` numbers, a
//! pathological netlist, an internal bug) degrades to a typed per-core
//! diagnostic while the healthy cores still produce their Table-1/2-style
//! rows, and a [`RunBudget`] bounds the whole run so no single cone can
//! hold an experiment hostage.
//!
//! Entry points return a [`Completion`]: the (possibly partial) result,
//! an optional [`BudgetExhausted`] marker, and one [`CoreOutcome`] per
//! core saying whether that core completed, returned partial work on a
//! tripped budget, or failed with a diagnostic.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use modsoc_soc::Soc;

pub use modsoc_atpg::budget::{BudgetExhausted, ExhaustReason, RunBudget};

use crate::analysis::CoreTdvRow;
use crate::tdv::{core_tdv_checked, isocost_split_checked, TdvOptions};

/// Why a core's slice of the pipeline failed (as opposed to completing
/// or returning budget-partial work).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreFailure {
    /// The per-core computation panicked; the payload message is
    /// preserved. The panic was contained — other cores are unaffected.
    Panicked(String),
    /// The per-core computation returned a typed error.
    Error(String),
    /// The core's parameters overflow the TDV equations (`u64`): the
    /// numbers are physically absurd, usually a corrupted `.soc`.
    Overflow,
}

impl fmt::Display for CoreFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreFailure::Panicked(msg) => write!(f, "panicked: {msg}"),
            CoreFailure::Error(msg) => write!(f, "error: {msg}"),
            CoreFailure::Overflow => write!(f, "parameter overflow in TDV equations"),
        }
    }
}

impl std::error::Error for CoreFailure {}

/// How one core's slice of a guarded run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreOutcomeKind {
    /// Finished normally.
    Complete,
    /// A budget limit tripped; the core contributed partial work.
    Partial(BudgetExhausted),
    /// The core failed; it contributes nothing, with a diagnostic.
    Failed(CoreFailure),
}

impl CoreOutcomeKind {
    /// Short column label for tables: `ok` / `partial` / `FAILED`.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            CoreOutcomeKind::Complete => "ok",
            CoreOutcomeKind::Partial(_) => "partial",
            CoreOutcomeKind::Failed(_) => "FAILED",
        }
    }
}

/// Per-core outcome row of a guarded run.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreOutcome {
    /// Core (or pseudo-stage, e.g. `"<monolithic>"`) name.
    pub core: String,
    /// How the core ended.
    pub kind: CoreOutcomeKind,
    /// Patterns the core contributed, when it produced any.
    pub patterns: Option<u64>,
    /// Fault coverage reached, when measurable.
    pub fault_coverage: Option<f64>,
}

impl CoreOutcome {
    /// Whether the core contributed usable (complete or partial) work.
    #[must_use]
    pub fn contributed(&self) -> bool {
        !matches!(self.kind, CoreOutcomeKind::Failed(_))
    }
}

/// The result of a guarded, budgeted entry point: the work that was
/// done, whether a budget limit cut it short, and per-core outcomes.
#[derive(Debug, Clone)]
pub struct Completion<T> {
    /// The (possibly partial) result.
    pub result: T,
    /// `Some` when a budget limit tripped anywhere in the run.
    pub exhausted: Option<BudgetExhausted>,
    /// One outcome per core (plus pipeline pseudo-stages), in run order.
    pub per_core_outcomes: Vec<CoreOutcome>,
}

impl<T> Completion<T> {
    /// Whether every core completed and no budget tripped.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.exhausted.is_none()
            && self
                .per_core_outcomes
                .iter()
                .all(|o| matches!(o.kind, CoreOutcomeKind::Complete))
    }

    /// Cores that failed outright.
    #[must_use]
    pub fn failed_cores(&self) -> Vec<&CoreOutcome> {
        self.per_core_outcomes
            .iter()
            .filter(|o| matches!(o.kind, CoreOutcomeKind::Failed(_)))
            .collect()
    }

    /// Map the result, keeping outcomes and budget state.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Completion<U> {
        Completion {
            result: f(self.result),
            exhausted: self.exhausted,
            per_core_outcomes: self.per_core_outcomes,
        }
    }
}

/// Extract a printable message from a panic payload.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f` with panic isolation: a panic becomes
/// [`CoreFailure::Panicked`] instead of unwinding through the pipeline.
///
/// The closure is treated as unwind-safe: the workspace forbids unsafe
/// code, and guarded closures only touch data that is discarded on
/// failure, so a broken invariant cannot leak into surviving state.
///
/// # Errors
///
/// Returns [`CoreFailure::Panicked`] when `f` panics.
pub fn guard<T>(f: impl FnOnce() -> T) -> Result<T, CoreFailure> {
    catch_unwind(AssertUnwindSafe(f))
        .map_err(|payload| CoreFailure::Panicked(panic_message(payload)))
}

/// [`guard`] for fallible closures: panics become
/// [`CoreFailure::Panicked`], typed errors become [`CoreFailure::Error`].
///
/// # Errors
///
/// Returns a [`CoreFailure`] when `f` panics or returns `Err`.
pub fn guard_result<T, E: fmt::Display>(
    f: impl FnOnce() -> Result<T, E>,
) -> Result<T, CoreFailure> {
    match guard(f) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(e)) => Err(CoreFailure::Error(e.to_string())),
        Err(failure) => Err(failure),
    }
}

/// Per-core TDV analysis with graceful degradation: every core whose
/// parameters fit the `u64` equations gets its Table-1/2-style row;
/// a poisoned core (overflow, panic) gets a typed [`CoreOutcome`]
/// diagnostic instead of taking the whole analysis down.
///
/// The returned rows cover exactly the cores whose outcome
/// [contributed](CoreOutcome::contributed); `per_core_outcomes` covers
/// every core in SOC order.
#[must_use]
pub fn analyze_soc_guarded(soc: &Soc, options: &TdvOptions) -> Completion<Vec<CoreTdvRow>> {
    analyze_soc_guarded_jobs(soc, options, 1)
}

/// [`analyze_soc_guarded`] fanned across `jobs` pool workers (`0` =
/// auto). Each core's TDV arithmetic is an independent guarded job; the
/// merge is order-preserving, so the completion is identical to the
/// sequential run at any job count.
#[must_use]
pub fn analyze_soc_guarded_jobs(
    soc: &Soc,
    options: &TdvOptions,
    jobs: usize,
) -> Completion<Vec<CoreTdvRow>> {
    analyze_soc_guarded_jobs_metered(soc, options, jobs, &modsoc_metrics::NullSink)
}

/// [`analyze_soc_guarded_jobs`] reporting the TDV-analysis phase timing
/// and pool utilization into a
/// [`MetricsSink`](modsoc_metrics::MetricsSink). Rows and outcomes are
/// byte-identical to the unmetered call.
#[must_use]
pub fn analyze_soc_guarded_jobs_metered(
    soc: &Soc,
    options: &TdvOptions,
    jobs: usize,
    sink: &dyn modsoc_metrics::MetricsSink,
) -> Completion<Vec<CoreTdvRow>> {
    let _analysis_timer =
        modsoc_metrics::PhaseTimer::start(sink, modsoc_metrics::Phase::TdvAnalysis);
    let ids: Vec<_> = soc.iter().collect();
    let computed =
        crate::parallel::WorkerPool::new(jobs.max(1)).map_with_sink(&ids, sink, |_, (id, _)| {
            guard(|| {
                let volume = core_tdv_checked(soc, *id, options)?;
                let (iso_s, iso_r) = isocost_split_checked(soc, *id, options)?;
                Some((volume, iso_s.checked_add(iso_r)?))
            })
        });

    let mut rows = Vec::new();
    let mut outcomes = Vec::new();
    for ((id, core), computed) in ids.into_iter().zip(computed) {
        match computed {
            Ok(Some((volume, isocost))) => {
                rows.push(CoreTdvRow {
                    id,
                    name: core.name.clone(),
                    isocost,
                    volume,
                });
                outcomes.push(CoreOutcome {
                    core: core.name.clone(),
                    kind: CoreOutcomeKind::Complete,
                    patterns: Some(core.patterns),
                    fault_coverage: None,
                });
            }
            Ok(None) => outcomes.push(CoreOutcome {
                core: core.name.clone(),
                kind: CoreOutcomeKind::Failed(CoreFailure::Overflow),
                patterns: Some(core.patterns),
                fault_coverage: None,
            }),
            Err(failure) => outcomes.push(CoreOutcome {
                core: core.name.clone(),
                kind: CoreOutcomeKind::Failed(failure),
                patterns: None,
                fault_coverage: None,
            }),
        }
    }
    Completion {
        result: rows,
        exhausted: None,
        per_core_outcomes: outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsoc_soc::CoreSpec;

    #[test]
    fn guard_contains_panics() {
        let err = guard(|| panic!("boom {}", 42)).unwrap_err();
        assert_eq!(err, CoreFailure::Panicked("boom 42".to_string()));
        assert_eq!(guard(|| 7).unwrap(), 7);
    }

    #[test]
    fn guard_result_separates_errors_from_panics() {
        let ok: Result<u32, CoreFailure> = guard_result(|| Ok::<_, String>(3));
        assert_eq!(ok.unwrap(), 3);
        let err = guard_result(|| Err::<u32, _>("bad input".to_string())).unwrap_err();
        assert_eq!(err, CoreFailure::Error("bad input".to_string()));
        let p = guard_result(|| -> Result<u32, String> { panic!("kaboom") }).unwrap_err();
        assert!(matches!(p, CoreFailure::Panicked(m) if m == "kaboom"));
    }

    #[test]
    fn poisoned_core_degrades_to_diagnostic() {
        let mut soc = Soc::new("mixed");
        soc.add_core(CoreSpec::leaf("good_a", 4, 3, 0, 20, 100))
            .unwrap();
        soc.add_core(CoreSpec::leaf("poisoned", 1, 1, 0, u64::MAX, u64::MAX))
            .unwrap();
        soc.add_core(CoreSpec::leaf("good_b", 2, 2, 0, 10, 50))
            .unwrap();
        let completion = analyze_soc_guarded(&soc, &TdvOptions::tables_3_4());
        assert_eq!(completion.per_core_outcomes.len(), 3);
        assert_eq!(completion.result.len(), 2, "healthy cores still get rows");
        assert!(completion.result.iter().any(|r| r.name == "good_a"));
        assert!(completion.result.iter().any(|r| r.name == "good_b"));
        let failed = completion.failed_cores();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].core, "poisoned");
        assert!(matches!(
            failed[0].kind,
            CoreOutcomeKind::Failed(CoreFailure::Overflow)
        ));
        assert!(!completion.is_complete());
    }

    #[test]
    fn healthy_soc_is_complete() {
        let mut soc = Soc::new("ok");
        soc.add_core(CoreSpec::leaf("a", 4, 3, 0, 20, 100)).unwrap();
        let completion = analyze_soc_guarded(&soc, &TdvOptions::tables_1_2());
        assert!(completion.is_complete());
        assert_eq!(completion.result.len(), 1);
        assert_eq!(completion.per_core_outcomes[0].kind.label(), "ok");
    }

    #[test]
    fn guarded_analysis_is_jobs_invariant() {
        let mut soc = Soc::new("mixed");
        soc.add_core(CoreSpec::leaf("good_a", 4, 3, 0, 20, 100))
            .unwrap();
        soc.add_core(CoreSpec::leaf("poisoned", 1, 1, 0, u64::MAX, u64::MAX))
            .unwrap();
        soc.add_core(CoreSpec::leaf("good_b", 2, 2, 0, 10, 50))
            .unwrap();
        let serial = analyze_soc_guarded(&soc, &TdvOptions::tables_3_4());
        for jobs in [0, 2, 4] {
            let parallel = analyze_soc_guarded_jobs(&soc, &TdvOptions::tables_3_4(), jobs);
            assert_eq!(
                parallel.per_core_outcomes, serial.per_core_outcomes,
                "jobs={jobs}"
            );
            assert_eq!(parallel.result.len(), serial.result.len());
            for (p, s) in parallel.result.iter().zip(serial.result.iter()) {
                assert_eq!((p.id, &p.name, p.isocost), (s.id, &s.name, s.isocost));
                assert_eq!(p.volume, s.volume);
            }
        }
    }

    #[test]
    fn completion_map_preserves_outcomes() {
        let c = Completion {
            result: 5u32,
            exhausted: None,
            per_core_outcomes: vec![],
        };
        let mapped = c.map(|v| v * 2);
        assert_eq!(mapped.result, 10);
        assert!(mapped.is_complete());
    }
}
