//! Structured run metrics: assembling [`MetricsSnapshot`]s from the
//! engine, pool, and experiment pipeline into a machine-readable
//! [`RunMetrics`] report.
//!
//! The paper's analysis is an accounting exercise — pattern counts,
//! top-off waste, ISOCOST bits — and downstream wrapper/TAM
//! co-optimization work consumes exactly this kind of per-core cost
//! table as machine-readable input rather than printed text. This module
//! is the bridge: the primitive counters/timers live in the dependency-
//! free [`modsoc_metrics`] crate (re-exported here), while the
//! SOC-shaped composition — one recording sink per core, one for the
//! monolithic run, one for the pipeline itself — lives here.
//!
//! # Determinism contract
//!
//! Everything in a serialized report is deterministic (identical at
//! `--jobs 1` vs `--jobs N`) **except**:
//!
//! * any field whose key ends in `_ms` (wall-clock times),
//! * the `"sched"` objects (per-worker utilization rows), always
//!   serialized on a single line,
//! * the top-level `"jobs"` field itself,
//! * the `store_*` counters (`store_hits`/`store_misses`/…): they are
//!   *cache-state*-dependent — a cold `--store` run records misses and
//!   writes where a warm run records hits — while still `--jobs`-
//!   invariant at a fixed cache state.
//!
//! The serializer guarantees each of those lands on its own line, so a
//! shell-level `grep -vE '"(sched|jobs)": |_ms":|"store_'` strips the
//! volatile subset and the remainder must diff clean between runs — that
//! is the CI determinism gate, and [`RunMetrics::deterministic_eq`] is
//! the same contract in-process.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

pub use modsoc_metrics::{
    json, BudgetSnapshot, Counter, MetricsSink, MetricsSnapshot, NullSink, Phase, PhaseTimer,
    RecordingSink, WorkerRow, COUNTER_COUNT, PHASE_COUNT,
};

use modsoc_atpg::{Atpg, AtpgResult};
use modsoc_circuitgen::SocNetlist;
use modsoc_metrics::json::{fmt_f64, write_json_string, JsonError, JsonValue};

use crate::error::AnalysisError;
use crate::experiment::{run_soc_experiment_guarded_full, ExperimentOptions, SocExperiment};
use crate::runctl::{Completion, RunBudget};

/// Report schema version (bump on incompatible layout changes).
pub const RUN_METRICS_SCHEMA: u64 = 1;

/// Metrics for one unit of work (a core, or the `"<monolithic>"`
/// pseudo-core): its outcome row plus the counter/phase snapshot of the
/// recording sink that watched its engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreRunMetrics {
    /// Core name (or `"<monolithic>"`).
    pub core: String,
    /// Outcome label: `"ok"`, `"partial"`, or `"FAILED"`.
    pub outcome: String,
    /// Final pattern count (absent when the core failed).
    pub patterns: Option<u64>,
    /// Fault coverage (absent when the core failed).
    pub fault_coverage: Option<f64>,
    /// Counter and phase snapshot of this core's engine run.
    pub snapshot: MetricsSnapshot,
}

/// A complete, serializable metrics report for one CLI-level run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Schema version ([`RUN_METRICS_SCHEMA`]).
    pub schema: u64,
    /// The command that produced the report (`"experiment"`,
    /// `"analyze"`, `"engine"`, …).
    pub command: String,
    /// What was run (SOC name, netlist file, profile name).
    pub target: String,
    /// Worker-thread setting of the run (volatile by contract: excluded
    /// from determinism comparisons).
    pub jobs: u64,
    /// End-to-end wall time in milliseconds (volatile).
    pub wall_ms: f64,
    /// Budget configuration and consumption at the end of the run.
    pub budget: BudgetSnapshot,
    /// Aggregated snapshot: sum of every per-core snapshot (in core
    /// order) plus the pipeline sink. Deterministic except wall times
    /// and worker rows.
    pub totals: MetricsSnapshot,
    /// Per-core breakdown, in core order (monolithic pseudo-core last).
    pub cores: Vec<CoreRunMetrics>,
}

impl RunMetrics {
    /// Whether the *deterministic* sections of two reports agree:
    /// everything except `jobs`, wall times, and worker rows. This is
    /// the in-process form of the CI determinism gate.
    #[must_use]
    pub fn deterministic_eq(&self, other: &RunMetrics) -> bool {
        self.schema == other.schema
            && self.command == other.command
            && self.target == other.target
            && self.budget.max_backtracks == other.budget.max_backtracks
            && self.budget.max_patterns == other.budget.max_patterns
            && self.totals.deterministic_eq(&other.totals)
            && self.cores.len() == other.cores.len()
            && self.cores.iter().zip(&other.cores).all(|(a, b)| {
                a.core == b.core
                    && a.outcome == b.outcome
                    && a.patterns == b.patterns
                    && a.snapshot.deterministic_eq(&b.snapshot)
            })
    }

    /// Serialize the report as pretty-printed JSON with the layout the
    /// determinism gate relies on: two-space indent, one field per line,
    /// except each `"sched"` object which is emitted entirely on one
    /// line. Field order is fixed by [`Counter::ALL`] / [`Phase::ALL`],
    /// and every number is finite (non-finite values become `null`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        push_kv(&mut out, 1, "schema", &self.schema.to_string(), true);
        push_kv_str(&mut out, 1, "command", &self.command, true);
        push_kv_str(&mut out, 1, "target", &self.target, true);
        push_kv(&mut out, 1, "jobs", &self.jobs.to_string(), true);
        push_kv(&mut out, 1, "wall_ms", &fmt_f64(self.wall_ms), true);
        write_budget(&mut out, 1, &self.budget);
        out.push_str(",\n");
        write_snapshot_sections(&mut out, 1, &self.totals, false);
        out.push_str(",\n");
        push_indent(&mut out, 1);
        out.push_str("\"cores\": [");
        for (i, core) in self.cores.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            push_indent(&mut out, 2);
            out.push_str("{\n");
            push_kv_str(&mut out, 3, "core", &core.core, true);
            push_kv_str(&mut out, 3, "outcome", &core.outcome, true);
            push_kv(
                &mut out,
                3,
                "patterns",
                &core.patterns.map_or("null".to_string(), |p| p.to_string()),
                true,
            );
            push_kv(
                &mut out,
                3,
                "fault_coverage",
                &core.fault_coverage.map_or("null".to_string(), fmt_f64),
                true,
            );
            write_snapshot_sections(&mut out, 3, &core.snapshot, true);
            out.push('\n');
            push_indent(&mut out, 2);
            out.push('}');
        }
        if !self.cores.is_empty() {
            out.push('\n');
            push_indent(&mut out, 1);
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parse a report previously produced by [`RunMetrics::to_json`].
    ///
    /// Unknown counter/phase names are ignored and missing ones read as
    /// zero, so reports survive counter additions in either direction.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed JSON or a missing/mistyped
    /// required field.
    pub fn from_json(src: &str) -> Result<RunMetrics, JsonError> {
        let doc = json::parse(src)?;
        let need = |key: &str| -> Result<&JsonValue, JsonError> {
            doc.get(key).ok_or_else(|| JsonError {
                offset: 0,
                message: format!("missing field '{key}'"),
            })
        };
        let schema = need("schema")?.as_u64().unwrap_or(0);
        let command = need("command")?.as_str().unwrap_or_default().to_string();
        let target = need("target")?.as_str().unwrap_or_default().to_string();
        let jobs = need("jobs")?.as_u64().unwrap_or(1);
        let wall_ms = need("wall_ms")?.as_f64().unwrap_or(0.0);
        let budget = parse_budget(doc.get("budget"));
        let totals = parse_snapshot(&doc);
        let mut cores = Vec::new();
        if let Some(rows) = doc.get("cores").and_then(JsonValue::as_array) {
            for row in rows {
                cores.push(CoreRunMetrics {
                    core: row
                        .get("core")
                        .and_then(JsonValue::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    outcome: row
                        .get("outcome")
                        .and_then(JsonValue::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    patterns: row.get("patterns").and_then(JsonValue::as_u64),
                    fault_coverage: row.get("fault_coverage").and_then(JsonValue::as_f64),
                    snapshot: parse_snapshot(row),
                });
            }
        }
        Ok(RunMetrics {
            schema,
            command,
            target,
            jobs,
            wall_ms,
            budget,
            totals,
            cores,
        })
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn push_kv(out: &mut String, depth: usize, key: &str, value: &str, comma: bool) {
    push_indent(out, depth);
    let _ = write!(out, "\"{key}\": {value}");
    if comma {
        out.push_str(",\n");
    }
}

fn push_kv_str(out: &mut String, depth: usize, key: &str, value: &str, comma: bool) {
    push_indent(out, depth);
    let _ = write!(out, "\"{key}\": ");
    write_json_string(value, out);
    if comma {
        out.push_str(",\n");
    }
}

fn write_budget(out: &mut String, depth: usize, b: &BudgetSnapshot) {
    push_indent(out, depth);
    out.push_str("\"budget\": {\n");
    push_kv(
        out,
        depth + 1,
        "backtracks_used",
        &b.backtracks_used.to_string(),
        true,
    );
    push_kv(
        out,
        depth + 1,
        "max_backtracks",
        &b.max_backtracks
            .map_or("null".to_string(), |v| v.to_string()),
        true,
    );
    push_kv(
        out,
        depth + 1,
        "max_patterns",
        &b.max_patterns.map_or("null".to_string(), |v| v.to_string()),
        true,
    );
    push_kv(
        out,
        depth + 1,
        "deadline_set",
        bool_str(b.deadline_set),
        true,
    );
    push_kv(out, depth + 1, "cancelled", bool_str(b.cancelled), false);
    out.push('\n');
    push_indent(out, depth);
    out.push('}');
}

fn bool_str(b: bool) -> &'static str {
    if b {
        "true"
    } else {
        "false"
    }
}

/// Write the `counters`/`phases`/`sched` sections of one snapshot.
/// `sparse` omits zero counters and never-entered phases (used for the
/// per-core breakdown); the totals section always writes the full
/// tables. Does NOT emit a trailing comma or newline.
fn write_snapshot_sections(out: &mut String, depth: usize, snap: &MetricsSnapshot, sparse: bool) {
    push_indent(out, depth);
    out.push_str("\"counters\": {\n");
    let mut first = true;
    for c in Counter::ALL {
        let v = snap.counter(c);
        if sparse && v == 0 {
            continue;
        }
        if !first {
            out.push_str(",\n");
        }
        first = false;
        push_kv(out, depth + 1, c.name(), &v.to_string(), false);
    }
    out.push('\n');
    push_indent(out, depth);
    out.push_str("},\n");

    push_indent(out, depth);
    out.push_str("\"phases\": {\n");
    let mut first = true;
    for p in Phase::ALL {
        let calls = snap.phase_calls(p);
        if sparse && calls == 0 {
            continue;
        }
        if !first {
            out.push_str(",\n");
        }
        first = false;
        push_indent(out, depth + 1);
        let _ = writeln!(out, "\"{}\": {{", p.name());
        push_kv(out, depth + 2, "calls", &calls.to_string(), true);
        push_kv(out, depth + 2, "wall_ms", &fmt_f64(snap.phase_ms(p)), false);
        out.push('\n');
        push_indent(out, depth + 1);
        out.push('}');
    }
    out.push('\n');
    push_indent(out, depth);
    out.push_str("},\n");

    // The whole sched object lives on ONE line so the shell-level
    // determinism filter can drop it with a single line-match.
    push_indent(out, depth);
    out.push_str("\"sched\": {\"workers\": [");
    for (i, w) in snap.workers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // `saturated` is emitted only when set so ordinary reports keep
        // their historical byte layout.
        let _ = write!(
            out,
            "{{\"worker\": {}, \"claimed\": {}, \"busy_ms\": {}{}}}",
            w.worker,
            w.claimed,
            fmt_f64(w.busy_nanos as f64 / 1e6),
            if w.saturated {
                ", \"saturated\": true"
            } else {
                ""
            }
        );
    }
    out.push_str("]}");
}

fn parse_budget(value: Option<&JsonValue>) -> BudgetSnapshot {
    let Some(b) = value else {
        return BudgetSnapshot::default();
    };
    BudgetSnapshot {
        backtracks_used: b
            .get("backtracks_used")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0),
        max_backtracks: b.get("max_backtracks").and_then(JsonValue::as_u64),
        max_patterns: b.get("max_patterns").and_then(JsonValue::as_u64),
        deadline_set: matches!(b.get("deadline_set"), Some(JsonValue::Bool(true))),
        cancelled: matches!(b.get("cancelled"), Some(JsonValue::Bool(true))),
    }
}

fn parse_snapshot(obj: &JsonValue) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    if let Some(counters) = obj.get("counters") {
        for c in Counter::ALL {
            if let Some(v) = counters.get(c.name()).and_then(JsonValue::as_u64) {
                snap.counters[c.index()] = v;
            }
        }
    }
    if let Some(phases) = obj.get("phases") {
        for p in Phase::ALL {
            if let Some(entry) = phases.get(p.name()) {
                if let Some(calls) = entry.get("calls").and_then(JsonValue::as_u64) {
                    snap.phase_calls[p.index()] = calls;
                }
                if let Some(ms) = entry.get("wall_ms").and_then(JsonValue::as_f64) {
                    // Round, don't truncate: ms was printed as nanos/1e6,
                    // and truncating the re-scaled value can drop the last
                    // nanosecond, breaking the serialize→parse fixed point.
                    snap.phase_nanos[p.index()] = (ms * 1e6).round() as u64;
                }
            }
        }
    }
    if let Some(workers) = obj
        .get("sched")
        .and_then(|s| s.get("workers"))
        .and_then(JsonValue::as_array)
    {
        for w in workers {
            snap.workers.push(WorkerRow {
                worker: w.get("worker").and_then(JsonValue::as_u64).unwrap_or(0) as usize,
                claimed: w.get("claimed").and_then(JsonValue::as_u64).unwrap_or(0),
                busy_nanos: (w.get("busy_ms").and_then(JsonValue::as_f64).unwrap_or(0.0) * 1e6)
                    .round() as u64,
                saturated: w
                    .get("saturated")
                    .and_then(JsonValue::as_bool)
                    .unwrap_or(false),
            });
        }
    }
    snap
}

/// A guarded experiment completion paired with its metrics report.
#[derive(Debug)]
pub struct MeteredExperiment {
    /// The experiment completion (identical to what
    /// [`crate::experiment::run_soc_experiment_guarded`] returns).
    pub completion: Completion<SocExperiment>,
    /// The assembled metrics report.
    pub metrics: RunMetrics,
}

/// Run the guarded modular-vs-monolithic experiment with full metrics:
/// each core's engine reports into its own [`RecordingSink`], the
/// monolithic run into another, and the pipeline (dispatch, flatten,
/// TDV analysis, pool utilization) into a third; the report aggregates
/// them in core order.
///
/// The experiment results are byte-identical to
/// [`crate::experiment::run_soc_experiment_guarded`] — recording is
/// observation only — and every deterministic report field is identical
/// at any [`ExperimentOptions::jobs`] value.
///
/// # Errors
///
/// As [`crate::experiment::run_soc_experiment_guarded`].
pub fn run_soc_experiment_metered(
    netlist: &SocNetlist,
    options: &ExperimentOptions,
    budget: &RunBudget,
) -> Result<MeteredExperiment, AnalysisError> {
    let start = Instant::now();
    let pipeline = RecordingSink::new();
    let core_sinks: Vec<Arc<RecordingSink>> = (0..netlist.cores().len())
        .map(|_| Arc::new(RecordingSink::new()))
        .collect();
    let mono_sink = Arc::new(RecordingSink::new());

    let completion = run_soc_experiment_guarded_full(
        netlist,
        options,
        budget,
        &pipeline,
        |i, circuit| {
            let engine = Atpg::with_sink(
                options.atpg.clone(),
                Arc::clone(&core_sinks[i]) as Arc<dyn MetricsSink>,
            );
            options.run_engine(&engine, circuit, budget)
        },
        |flat| -> Result<AtpgResult, AnalysisError> {
            let engine = Atpg::with_sink(
                options.atpg.clone(),
                Arc::clone(&mono_sink) as Arc<dyn MetricsSink>,
            );
            options.run_engine(&engine, flat, budget)
        },
    )?;

    // Assemble the per-core breakdown from the outcome rows (one per
    // core in netlist order, then optionally "<monolithic>"), pairing
    // each with its sink's snapshot.
    let mut cores = Vec::with_capacity(completion.per_core_outcomes.len());
    for (i, outcome) in completion.per_core_outcomes.iter().enumerate() {
        let snapshot = if outcome.core == "<monolithic>" {
            mono_sink.snapshot()
        } else {
            core_sinks.get(i).map(|s| s.snapshot()).unwrap_or_default()
        };
        cores.push(CoreRunMetrics {
            core: outcome.core.clone(),
            outcome: outcome.kind.label().to_string(),
            patterns: outcome.patterns,
            fault_coverage: outcome.fault_coverage,
            snapshot,
        });
    }
    let mut totals = MetricsSnapshot::default();
    for core in &cores {
        totals.absorb(&core.snapshot);
    }
    totals.absorb(&pipeline.snapshot());

    let metrics = RunMetrics {
        schema: RUN_METRICS_SCHEMA,
        command: "experiment".to_string(),
        target: netlist.name().to_string(),
        jobs: crate::parallel::effective_jobs(options.jobs.max(1)) as u64,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        budget: budget.snapshot(),
        totals,
        cores,
    };
    Ok(MeteredExperiment {
        completion,
        metrics,
    })
}

/// Assemble a [`RunMetrics`] report for a guarded TDV *analysis* run
/// (no ATPG engine: the per-core rows carry outcomes only, and the
/// totals come from the pipeline sink that watched the pool dispatch).
#[must_use]
pub fn analysis_run_metrics(
    command: &str,
    target: &str,
    jobs: usize,
    wall_ms: f64,
    budget: &RunBudget,
    pipeline: &RecordingSink,
    completion_outcomes: &[crate::runctl::CoreOutcome],
) -> RunMetrics {
    let cores = completion_outcomes
        .iter()
        .map(|o| CoreRunMetrics {
            core: o.core.clone(),
            outcome: o.kind.label().to_string(),
            patterns: o.patterns,
            fault_coverage: o.fault_coverage,
            snapshot: MetricsSnapshot::default(),
        })
        .collect();
    RunMetrics {
        schema: RUN_METRICS_SCHEMA,
        command: command.to_string(),
        target: target.to_string(),
        jobs: crate::parallel::effective_jobs(jobs.max(1)) as u64,
        wall_ms,
        budget: budget.snapshot(),
        totals: pipeline.snapshot(),
        cores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsoc_circuitgen::soc::mini_soc;

    fn sample_metrics() -> RunMetrics {
        let netlist = mini_soc(7).unwrap();
        let metered = run_soc_experiment_metered(
            &netlist,
            &ExperimentOptions::paper_tables_1_2(),
            &RunBudget::unlimited(),
        )
        .unwrap();
        metered.metrics
    }

    #[test]
    fn metered_experiment_matches_unmetered_results() {
        let netlist = mini_soc(7).unwrap();
        let options = ExperimentOptions::paper_tables_1_2();
        let plain = crate::experiment::run_soc_experiment_guarded(
            &netlist,
            &options,
            &RunBudget::unlimited(),
        )
        .unwrap();
        let metered =
            run_soc_experiment_metered(&netlist, &options, &RunBudget::unlimited()).unwrap();
        assert_eq!(metered.completion.result.t_mono, plain.result.t_mono);
        assert_eq!(
            metered
                .completion
                .result
                .cores
                .iter()
                .map(|c| c.patterns)
                .collect::<Vec<_>>(),
            plain
                .result
                .cores
                .iter()
                .map(|c| c.patterns)
                .collect::<Vec<_>>()
        );
        // The report actually observed the engine runs.
        assert!(metered.metrics.totals.counter(Counter::PatternsFinal) > 0);
        assert!(metered.metrics.totals.counter(Counter::FaultsCollapsed) > 0);
        assert!(metered.metrics.totals.phase_calls(Phase::PodemPhase) >= 3);
        // 2 cores + monolithic pseudo-core.
        assert_eq!(metered.metrics.cores.len(), 3);
        assert_eq!(metered.metrics.cores[2].core, "<monolithic>");
    }

    #[test]
    fn json_round_trip_is_lossless_and_stable() {
        let m = sample_metrics();
        let text = m.to_json();
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
        let back = RunMetrics::from_json(&text).unwrap();
        assert!(m.deterministic_eq(&back));
        assert_eq!(back.jobs, m.jobs);
        // Re-serialization is byte-stable (field order fixed).
        assert_eq!(back.to_json(), text);
        // Valid JSON by the crate's own parser.
        json::parse(&text).unwrap();
    }

    #[test]
    fn volatile_fields_obey_line_layout() {
        let m = sample_metrics();
        let text = m.to_json();
        for line in text.lines() {
            let volatile = line.contains("_ms\":")
                || line.contains("\"sched\": ")
                || line.contains("\"jobs\": ");
            if line.contains("\"sched\": ") {
                // The whole sched object (with its busy_ms values) is on
                // this single line.
                assert!(line.trim_end().ends_with("]}") || line.trim_end().ends_with("]},"));
            }
            if line.contains("\"calls\":") {
                assert!(!volatile, "calls must survive the volatile filter: {line}");
            }
        }
        // The grep-level filter leaves the deterministic skeleton.
        let filtered: Vec<&str> = text
            .lines()
            .filter(|l| {
                !(l.contains("_ms\":") || l.contains("\"sched\": ") || l.contains("\"jobs\": "))
            })
            .collect();
        assert!(filtered.iter().any(|l| l.contains("\"counters\"")));
        assert!(!filtered.iter().any(|l| l.contains("busy_ms")));
    }

    #[test]
    fn jobs_invariance_of_deterministic_sections() {
        let netlist = mini_soc(7).unwrap();
        let base = run_soc_experiment_metered(
            &netlist,
            &ExperimentOptions::paper_tables_1_2(),
            &RunBudget::unlimited(),
        )
        .unwrap()
        .metrics;
        for jobs in [2, 4] {
            let other = run_soc_experiment_metered(
                &netlist,
                &ExperimentOptions::paper_tables_1_2().with_jobs(jobs),
                &RunBudget::unlimited(),
            )
            .unwrap()
            .metrics;
            assert!(
                base.deterministic_eq(&other),
                "jobs={jobs}: counter drift\nbase: {:?}\nother: {:?}",
                base.totals.counters,
                other.totals.counters
            );
        }
    }

    #[test]
    fn budget_snapshot_round_trips() {
        let budget = RunBudget::unlimited()
            .with_max_backtracks(1000)
            .with_max_patterns(50);
        let netlist = mini_soc(5).unwrap();
        let m =
            run_soc_experiment_metered(&netlist, &ExperimentOptions::paper_tables_1_2(), &budget)
                .unwrap()
                .metrics;
        assert_eq!(m.budget.max_backtracks, Some(1000));
        assert_eq!(m.budget.max_patterns, Some(50));
        let back = RunMetrics::from_json(&m.to_json()).unwrap();
        assert_eq!(back.budget, m.budget);
    }
}
