//! Analytic reconstruction of per-core data from published aggregates.
//!
//! The paper's Table 4 evaluates ten ITC'02 SOCs, but only p34392's
//! per-core data is published (Table 3). The other nine SOCs' `.soc`
//! files are not available in this workspace, so — per the substitution
//! rule in `DESIGN.md` — this module *inverts* the TDV equations: given a
//! Table 4 row (core count, normalized standard deviation of pattern
//! counts, optimistic monolithic TDV `V`, penalty `P`, benefit `B`), it
//! solves for a flat SOC (one glue top plus `N` leaf cores) whose
//! computed aggregates match the published ones.
//!
//! Solution shape: pattern counts follow a truncated exponential profile
//! `T_i = max(1, T_max · e^(−α·i/N))` with `α` found by bisection on the
//! normalized standard deviation; scan cells are distributed to satisfy
//! the benefit equation (core 0 carries `d_0 = T_max − T_0 = 0`, so its
//! scan count is a free variable used to pin the monolithic volume);
//! wrapper terminal counts are distributed to satisfy the penalty
//! equation. Every downstream quantity — reduction percentages, the
//! std-dev correlation, the g12710/a586710 extremes — then reproduces
//! the paper's shape by construction.

use modsoc_soc::itc02::Table4Row;
use modsoc_soc::stats::SampleStats;
use modsoc_soc::{CoreSpec, Soc, SocError};

/// Aggregates to reconstruct a SOC from.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReconstructionTargets {
    /// SOC name.
    pub name: String,
    /// Number of module cores (excluding the glue top).
    pub cores: usize,
    /// Normalized sample standard deviation of module pattern counts.
    pub norm_stdev: f64,
    /// Optimistic monolithic TDV (Equation 3), bits.
    pub tdv_opt_mono: u64,
    /// Isolation penalty (Equation 7), bits.
    pub penalty: u64,
    /// Exact benefit (Equation 6 balance), bits.
    pub benefit: u64,
}

impl From<&Table4Row> for ReconstructionTargets {
    fn from(row: &Table4Row) -> ReconstructionTargets {
        ReconstructionTargets {
            name: row.name.to_string(),
            cores: row.cores,
            norm_stdev: row.norm_stdev,
            tdv_opt_mono: row.tdv_opt_mono,
            penalty: row.penalty,
            benefit: row.benefit,
        }
    }
}

/// Chip pins given to the reconstructed glue top (I = O = this, B = 0).
const CHIP_PINS_EACH: u64 = 50;

/// Reconstruct a SOC matching the targets.
///
/// The result is a flat SOC: a glue top core (I = O = 50, S = 0, T = 0)
/// embedding `cores` leaf cores. Matching guarantees (validated by the
/// crate's tests against every Table 4 row):
///
/// * `TDV_opt_mono` within one part in 10⁴,
/// * penalty and benefit within one part in 10³,
/// * normalized standard deviation within ±0.02,
/// * Equation 6 balances exactly for the *computed* aggregates.
///
/// # Errors
///
/// Returns [`SocError::Infeasible`] when no SOC can match (e.g. the
/// requested standard deviation exceeds what the core count permits, or
/// the benefit is smaller than the unavoidable chip-pin term).
pub fn reconstruct(targets: &ReconstructionTargets) -> Result<Soc, SocError> {
    let n = targets.cores;
    if n < 2 {
        return Err(SocError::Infeasible {
            message: "need at least two module cores".into(),
        });
    }
    let io_chip = 2 * CHIP_PINS_EACH;
    // Maximum achievable normalized sample std-dev for n values (one
    // spike, rest ~0) is sqrt(n); leave margin for the rounding.
    if targets.norm_stdev >= (n as f64).sqrt() * 0.98 {
        return Err(SocError::Infeasible {
            message: format!(
                "normalized stdev {} unreachable with {n} cores",
                targets.norm_stdev
            ),
        });
    }

    // --- Pick T_max. The monolithic volume (I+O+2B+2S)·T_max is always
    // a multiple of T_max, so an exact fit needs T_max | V: factor V and
    // pick the feasible divisor closest to sqrt(V)/2 (a realistic
    // pattern-count magnitude). A parity tweak on the chip pins (io_chip
    // or io_chip+1) makes V/T_max − io_chip even so the scan total is
    // integral. If V has no usable divisor, fall back to the candidate
    // minimizing V mod T_max and accept a sub-0.1% residual.
    let v = targets.tdv_opt_mono;
    let profile = fit_pattern_profile(n, targets.norm_stdev)?;
    let t0 = (((v as f64).sqrt() / 2.0).max(64.0)) as u64;
    // io parity is resolved per candidate: io = io_chip or io_chip + 1.
    let feasible = |t_max: u64, io: u64| -> bool {
        if t_max < 4 || io * t_max > targets.benefit {
            return false;
        }
        let per_pattern = v / t_max;
        if per_pattern <= io || !(per_pattern - io).is_multiple_of(2) {
            return false;
        }
        let s_tot = (per_pattern - io) / 2;
        if s_tot < n as u64 {
            return false;
        }
        let w = targets.benefit - io * t_max;
        let r_min = profile.iter().copied().fold(f64::INFINITY, f64::min);
        let t_min = ((r_min * t_max as f64).round().max(1.0)) as u64;
        let d_max = t_max.saturating_sub(t_min);
        // Need Σ2 S_i d_i = w with Σ S_i = s_tot, S_i ≥ 0.
        w <= 2 * s_tot * d_max
    };
    let io_for = |t_max: u64| -> Option<u64> {
        [io_chip, io_chip + 1]
            .into_iter()
            .find(|&io| feasible(t_max, io))
    };

    let mut chosen: Option<(u64, u64)> = None; // (t_max, io)
    for d in divisors_near(v, t0) {
        if let Some(io) = io_for(d) {
            chosen = Some((d, io));
            break;
        }
    }
    if chosen.is_none() {
        // Min-mod fallback over a dense window.
        let lo = (t0 / 2).max(4);
        let hi = t0.saturating_mul(2).max(lo + 1);
        let step = ((hi - lo) / 8192).max(1);
        let mut best = (u64::MAX, 0u64, 0u64); // (mod, t, io)
        let mut cand = lo;
        while cand <= hi {
            // Relax the parity requirement by testing both io values on
            // the rounded-down volume.
            for io in [io_chip, io_chip + 1] {
                let per_pattern = v / cand;
                if per_pattern > io && (per_pattern - io).is_multiple_of(2) && feasible(cand, io) {
                    let m = v % cand;
                    if m < best.0 {
                        best = (m, cand, io);
                    }
                }
            }
            cand += step;
        }
        if best.1 != 0 {
            chosen = Some((best.1, best.2));
        }
    }
    let (t_max, io_chip) = chosen.ok_or_else(|| SocError::Infeasible {
        message: "no feasible maximum pattern count".into(),
    })?;

    // --- Pattern counts at the chosen scale. ---
    let patterns = fit_pattern_counts(n, t_max, targets.norm_stdev)?;
    debug_assert_eq!(patterns[0], t_max);

    // --- Scan cells: joint solve of volume and benefit constraints. ---
    let s_tot = (v / t_max - io_chip) / 2;
    let w = targets.benefit - io_chip * t_max;
    let scan = fit_scan_cells(&patterns, t_max, s_tot, w)?;

    // --- Terminals: satisfy the penalty. ---
    let terminals = fit_terminals(&patterns, targets.penalty);

    // --- Assemble. ---
    let mut soc = Soc::new(targets.name.clone());
    let mut children = Vec::with_capacity(n);
    for i in 0..n {
        let io = terminals[i];
        let inputs = io / 2;
        let outputs = io - inputs;
        let id = soc.add_core(CoreSpec::leaf(
            format!("core{}", i + 1),
            inputs,
            outputs,
            0,
            scan[i],
            patterns[i],
        ))?;
        children.push(id);
    }
    soc.add_core(CoreSpec::parent(
        "top",
        CHIP_PINS_EACH,
        io_chip - CHIP_PINS_EACH,
        0,
        0,
        0,
        children,
    ))?;
    soc.validate()?;
    Ok(soc)
}

/// Divisors of `v` within `[t0/8, t0·8]`, ordered by distance from `t0`.
fn divisors_near(v: u64, t0: u64) -> Vec<u64> {
    let lo = (t0 / 8).max(4);
    let hi = t0.saturating_mul(8);
    let mut divisors = Vec::new();
    // Trial division up to sqrt(v); for each factor pair (d, v/d), keep
    // what falls in range.
    let root = (v as f64).sqrt() as u64 + 1;
    let mut d = 1;
    while d <= root {
        if v.is_multiple_of(d) {
            for cand in [d, v / d] {
                if (lo..=hi).contains(&cand) {
                    divisors.push(cand);
                }
            }
        }
        d += 1;
    }
    divisors.sort_unstable();
    divisors.dedup();
    divisors.sort_by_key(|&x| x.abs_diff(t0));
    divisors
}

/// Reconstruct the SOC for a Table 4 row (convenience).
///
/// # Errors
///
/// Propagates [`reconstruct`] errors.
///
/// # Example
///
/// ```
/// use modsoc_core::reconstruct::reconstruct_table4;
/// use modsoc_core::{SocTdvAnalysis, TdvOptions};
/// use modsoc_soc::itc02::table4_row;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let row = table4_row("a586710").expect("row exists");
/// let soc = reconstruct_table4(row)?;
/// let analysis = SocTdvAnalysis::compute(&soc, &TdvOptions::tables_3_4())?;
/// // The paper's most extreme reduction reproduces: −99.3%.
/// assert!(analysis.modular_change_pct() < -99.0);
/// # Ok(())
/// # }
/// ```
pub fn reconstruct_table4(row: &Table4Row) -> Result<Soc, SocError> {
    reconstruct(&ReconstructionTargets::from(row))
}

/// Fit the relative pattern profile `r_i = e^(−α·i/N)` (so `r_0 = 1`) by
/// bisection on α against the target normalized standard deviation,
/// evaluated at a large reference scale to make rounding negligible.
fn fit_pattern_profile(n: usize, target_nstd: f64) -> Result<Vec<f64>, SocError> {
    const REF: u64 = 1 << 20;
    let alpha = fit_alpha(n, REF, target_nstd)?;
    Ok((0..n)
        .map(|i| (-alpha * i as f64 / n as f64).exp())
        .collect())
}

/// Fit `T_i = max(1, T_max · e^(−α·i/N))` by bisection on α so the
/// sample normalized standard deviation matches.
fn fit_pattern_counts(n: usize, t_max: u64, target_nstd: f64) -> Result<Vec<u64>, SocError> {
    let alpha = fit_alpha(n, t_max, target_nstd)?;
    Ok(counts_for(n, t_max, alpha))
}

fn counts_for(n: usize, t_max: u64, alpha: f64) -> Vec<u64> {
    (0..n)
        .map(|i| {
            let t = t_max as f64 * (-alpha * i as f64 / n as f64).exp();
            (t.round() as u64).max(1)
        })
        .collect()
}

fn fit_alpha(n: usize, t_max: u64, target_nstd: f64) -> Result<f64, SocError> {
    let nstd_of = |alpha: f64| SampleStats::of(&counts_for(n, t_max, alpha)).normalized_stdev();
    // nstd grows monotonically with alpha from 0 toward ~sqrt(n).
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while nstd_of(hi) < target_nstd {
        hi *= 2.0;
        if hi > 1e6 {
            return Err(SocError::Infeasible {
                message: format!("cannot reach normalized stdev {target_nstd}"),
            });
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if nstd_of(mid) < target_nstd {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Distribute `s_tot` scan cells over cores so that *both* constraints
/// hold: `Σ S_i = s_tot` (pins the monolithic volume) and
/// `Σ 2·S_i·(T_max − T_i) = w` (pins the benefit).
///
/// Continuous solution: `S_i = a + b·d_i` from the 2×2 normal system;
/// negative entries are clamped to zero and the system re-solved on the
/// free set. Integer rounding is then repaired exactly: first the
/// benefit term via greedy adjustments (largest `d` first), then the
/// total via the `d = 0` core (which cannot disturb the benefit).
fn fit_scan_cells(patterns: &[u64], t_max: u64, s_tot: u64, w: u64) -> Result<Vec<u64>, SocError> {
    let n = patterns.len();
    let d: Vec<u64> = patterns.iter().map(|&t| t_max - t).collect();
    let d_max = d.iter().copied().max().unwrap_or(0);
    if w > 2 * s_tot * d_max {
        return Err(SocError::Infeasible {
            message: "benefit requires more pattern-count variation than the stdev permits".into(),
        });
    }

    // Solve on the free (unclamped) index set until no negatives remain.
    let mut free: Vec<usize> = (0..n).collect();
    let mut solution = vec![0.0f64; n];
    for _round in 0..=n {
        let m = free.len() as f64;
        let sd: f64 = free.iter().map(|&i| d[i] as f64).sum();
        let sd2: f64 = free.iter().map(|&i| (d[i] as f64).powi(2)).sum();
        // [ m    sd  ] [a]   [ s_tot ]
        // [ 2sd  2sd2] [b] = [ w     ]
        let det = m * 2.0 * sd2 - sd * 2.0 * sd;
        let (a, b) = if det.abs() < 1e-9 {
            // Degenerate (all d equal on the free set).
            if sd == 0.0 {
                (s_tot as f64 / m, 0.0)
            } else {
                let davg = sd / m;
                (0.0, w as f64 / (2.0 * davg * sd))
            }
        } else {
            let a = (s_tot as f64 * 2.0 * sd2 - sd * w as f64) / det;
            let b = (m * w as f64 - 2.0 * sd * s_tot as f64) / det;
            (a, b)
        };
        let mut any_negative = false;
        for &i in &free {
            solution[i] = a + b * d[i] as f64;
            if solution[i] < 0.0 {
                any_negative = true;
            }
        }
        if !any_negative {
            break;
        }
        free.retain(|&i| {
            if solution[i] < 0.0 {
                solution[i] = 0.0;
                false
            } else {
                true
            }
        });
        if free.is_empty() {
            return Err(SocError::Infeasible {
                message: "scan-cell distribution collapsed".into(),
            });
        }
    }

    let mut scan: Vec<u64> = solution
        .iter()
        .map(|&s| s.round().max(0.0) as u64)
        .collect();

    // Integer repair 1: benefit term, adjusting largest-d cores first.
    let target_w = w as i128;
    let mut achieved: i128 = scan
        .iter()
        .zip(&d)
        .map(|(&s, &di)| 2 * (s as i128) * (di as i128))
        .sum();
    let mut order: Vec<usize> = (0..n).filter(|&i| d[i] > 0).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(d[i]));
    for &i in &order {
        let step = 2 * d[i] as i128;
        let k = (target_w - achieved).div_euclid(step);
        let new_s = scan[i] as i128 + k;
        if new_s >= 0 && k != 0 {
            scan[i] = new_s as u64;
            achieved += k * step;
        }
    }
    // Integer repair 2: total scan count via a d = 0 core (index 0 holds
    // T_max so d_0 = 0 by construction).
    if let Some(zero) = (0..n).find(|&i| d[i] == 0) {
        let partial: u64 = scan
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != zero)
            .map(|(_, &s)| s)
            .sum();
        scan[zero] = s_tot.saturating_sub(partial);
    }
    Ok(scan)
}

/// Distribute terminal counts so `Σ T_i · IO_i ≈ penalty`.
fn fit_terminals(patterns: &[u64], penalty: u64) -> Vec<u64> {
    let t_sum: u64 = patterns.iter().sum();
    let base = penalty / t_sum.max(1);
    let mut io = vec![base; patterns.len()];
    let mut achieved: i128 = patterns.iter().map(|&t| (t * base) as i128).sum();
    let mut order: Vec<usize> = (0..patterns.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(patterns[i]));
    for &i in &order {
        if patterns[i] == 0 {
            continue;
        }
        let delta = penalty as i128 - achieved;
        if delta <= 0 {
            break;
        }
        let k = (delta / patterns[i] as i128) as u64;
        io[i] += k;
        achieved += (k * patterns[i]) as i128;
    }
    // The greedy leaves a residual below the smallest pattern count;
    // when pattern counts are large relative to the penalty that can be
    // a few percent. Polish with a local ± search over the two
    // smallest-count cores: combinations `a·T_i + b·T_j` cover much finer
    // steps (multiples of their difference).
    let residual = penalty as i128 - achieved;
    if residual != 0 && patterns.len() >= 2 {
        let mut small = order.clone();
        small.sort_by_key(|&i| patterns[i]);
        let (i, j) = (small[0], small[1]);
        let (ti, tj) = (patterns[i] as i128, patterns[j] as i128);
        let mut best: (i128, i64, i64) = (residual.abs(), 0, 0);
        for a in -8i64..=8 {
            for b in -8i64..=8 {
                if io[i] as i64 + a < 0 || io[j] as i64 + b < 0 {
                    continue;
                }
                let err = (residual - (a as i128 * ti + b as i128 * tj)).abs();
                if err < best.0 {
                    best = (err, a, b);
                }
            }
        }
        io[i] = (io[i] as i64 + best.1) as u64;
        io[j] = (io[j] as i64 + best.2) as u64;
    }
    io
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::SocTdvAnalysis;
    use crate::tdv::TdvOptions;
    use modsoc_soc::itc02::table4;
    use modsoc_soc::stats::pattern_count_stats;

    fn rel_err(a: u64, b: u64) -> f64 {
        (a as f64 - b as f64).abs() / (b as f64).max(1.0)
    }

    #[test]
    fn every_table4_row_reconstructs() {
        for row in table4() {
            let soc = reconstruct_table4(row).unwrap_or_else(|e| panic!("{}: {e}", row.name));
            let a = SocTdvAnalysis::compute(&soc, &TdvOptions::tables_3_4()).unwrap();
            assert!(
                rel_err(a.monolithic_optimistic().total(), row.tdv_opt_mono) < 1e-4,
                "{}: mono {} vs {}",
                row.name,
                a.monolithic_optimistic().total(),
                row.tdv_opt_mono
            );
            assert!(
                rel_err(a.penalty(), row.penalty) < 1e-3,
                "{}: penalty {} vs {}",
                row.name,
                a.penalty(),
                row.penalty
            );
            assert!(
                rel_err(a.benefit(), row.benefit) < 1e-3,
                "{}: benefit {} vs {}",
                row.name,
                a.benefit(),
                row.benefit
            );
            let st = pattern_count_stats(&soc);
            assert!(
                (st.normalized_stdev() - row.norm_stdev).abs() < 0.02,
                "{}: nstd {} vs {}",
                row.name,
                st.normalized_stdev(),
                row.norm_stdev
            );
            assert_eq!(st.n, row.cores, "{}", row.name);
        }
    }

    #[test]
    fn reconstructed_modular_matches_paper_shape() {
        // The modular TDV follows from Equation 6; it must match the
        // printed column except for p22810's documented 600k typo.
        for row in table4() {
            let soc = reconstruct_table4(row).unwrap();
            let a = SocTdvAnalysis::compute(&soc, &TdvOptions::tables_3_4()).unwrap();
            let tol = if row.name == "p22810" { 0.06 } else { 0.02 };
            assert!(
                rel_err(a.modular().total(), row.tdv_modular) < tol,
                "{}: modular {} vs {}",
                row.name,
                a.modular().total(),
                row.tdv_modular
            );
        }
    }

    #[test]
    fn reconstruction_is_deterministic() {
        let row = table4().iter().find(|r| r.name == "d695").unwrap();
        let a = reconstruct_table4(row).unwrap();
        let b = reconstruct_table4(row).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn g12710_reconstruction_shows_io_heavy_cores() {
        // The paper explains g12710's modular *increase*: core I/Os
        // exceed scan cells. The reconstruction reproduces that.
        let row = table4().iter().find(|r| r.name == "g12710").unwrap();
        let soc = reconstruct_table4(row).unwrap();
        let total_io: u64 = soc.iter().map(|(_, c)| c.inputs + c.outputs).sum();
        let total_scan = soc.total_scan_cells();
        assert!(
            total_io > total_scan,
            "io {total_io} should exceed scan {total_scan}"
        );
        let a = SocTdvAnalysis::compute(&soc, &TdvOptions::tables_3_4()).unwrap();
        assert!(
            a.modular_change_pct() > 0.0,
            "modular testing loses on g12710"
        );
    }

    #[test]
    fn a586710_reconstruction_shows_extreme_benefit() {
        let row = table4().iter().find(|r| r.name == "a586710").unwrap();
        let soc = reconstruct_table4(row).unwrap();
        let a = SocTdvAnalysis::compute(&soc, &TdvOptions::tables_3_4()).unwrap();
        assert!(a.modular_change_pct() < -99.0);
    }

    #[test]
    fn infeasible_stdev_rejected() {
        let t = ReconstructionTargets {
            name: "bad".into(),
            cores: 4,
            norm_stdev: 3.5, // > sqrt(4)
            tdv_opt_mono: 1_000_000,
            penalty: 1000,
            benefit: 500_000,
        };
        assert!(matches!(reconstruct(&t), Err(SocError::Infeasible { .. })));
    }

    #[test]
    fn too_few_cores_rejected() {
        let t = ReconstructionTargets {
            name: "one".into(),
            cores: 1,
            norm_stdev: 0.0,
            tdv_opt_mono: 1000,
            penalty: 10,
            benefit: 100,
        };
        assert!(reconstruct(&t).is_err());
    }
}
