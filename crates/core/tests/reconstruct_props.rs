//! Property-based tests for the Table-4 reconstruction engine: for any
//! *feasible* target tuple, the reconstructed SOC's computed aggregates
//! match the requested ones.

use proptest::prelude::*;

use modsoc_core::analysis::SocTdvAnalysis;
use modsoc_core::reconstruct::{reconstruct, ReconstructionTargets};
use modsoc_core::tdv::TdvOptions;
use modsoc_soc::stats::pattern_count_stats;

/// Generate targets the way the engine's own forward model would: pick
/// a plausible SOC shape, compute what its aggregates would be, and ask
/// the engine to reproduce them. This guarantees feasibility without
/// duplicating the solver's feasibility logic.
fn arb_targets() -> impl Strategy<Value = ReconstructionTargets> {
    (
        3usize..24,   // cores
        0.05f64..1.6, // normalized stdev target
        12u64..2000,  // T_max scale
        50u64..4000,  // scan per core scale
        5u64..400,    // io per core scale
    )
        .prop_map(|(n, nstd, t_scale, s_scale, io_scale)| {
            // Forward model: exponential pattern profile.
            let alpha = 4.0 * nstd; // rough; exact value irrelevant
            let t_max = 64 + t_scale * 20;
            let patterns: Vec<u64> = (0..n)
                .map(|i| {
                    ((t_max as f64 * (-alpha * i as f64 / n as f64).exp()).round() as u64).max(1)
                })
                .collect();
            let scan: Vec<u64> = (0..n)
                .map(|i| s_scale + (i as u64 * 13) % s_scale.max(1))
                .collect();
            let io: Vec<u64> = (0..n)
                .map(|i| io_scale + (i as u64 * 7) % io_scale.max(1))
                .collect();
            let io_chip = 100u64;
            let s_tot: u64 = scan.iter().sum();
            let v = (io_chip + 2 * s_tot) * t_max;
            let p: u64 = patterns.iter().zip(&io).map(|(&t, &x)| t * x).sum();
            let b: u64 = io_chip * t_max
                + patterns
                    .iter()
                    .zip(&scan)
                    .map(|(&t, &s)| 2 * s * (t_max - t))
                    .sum::<u64>();
            let nstd_actual = {
                let st = modsoc_soc::stats::SampleStats::of(&patterns);
                st.normalized_stdev()
            };
            ReconstructionTargets {
                name: "prop".into(),
                cores: n,
                norm_stdev: nstd_actual,
                tdv_opt_mono: v,
                penalty: p,
                benefit: b,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn feasible_targets_reconstruct_within_tolerance(targets in arb_targets()) {
        let soc = match reconstruct(&targets) {
            Ok(soc) => soc,
            // A generated tuple can still trip a feasibility guard
            // (e.g. benefit vs variation); rejection is acceptable,
            // silent mismatch is not.
            Err(_) => return Ok(()),
        };
        let a = SocTdvAnalysis::compute(&soc, &TdvOptions::tables_3_4()).expect("analysis");
        let rel = |x: u64, y: u64| (x as f64 - y as f64).abs() / (y as f64).max(1.0);
        prop_assert!(
            rel(a.monolithic_optimistic().total(), targets.tdv_opt_mono) < 1e-3,
            "mono {} vs {}",
            a.monolithic_optimistic().total(),
            targets.tdv_opt_mono
        );
        // Penalty fit granularity is bounded by the smallest pattern
        // count over the penalty; allow the larger of 1% and that bound.
        let t_min = soc
            .iter()
            .filter(|(_, c)| c.patterns > 0 && !c.is_hierarchical())
            .map(|(_, c)| c.patterns)
            .min()
            .unwrap_or(1) as f64;
        let pen_tol = (t_min / targets.penalty.max(1) as f64).max(1e-2);
        prop_assert!(
            rel(a.penalty(), targets.penalty) < pen_tol,
            "penalty {} vs {} (tol {pen_tol})",
            a.penalty(),
            targets.penalty
        );
        prop_assert!(
            rel(a.benefit(), targets.benefit) < 1e-2,
            "benefit {} vs {}",
            a.benefit(),
            targets.benefit
        );
        let st = pattern_count_stats(&soc);
        prop_assert!(
            (st.normalized_stdev() - targets.norm_stdev).abs() < 0.05,
            "nstd {} vs {}",
            st.normalized_stdev(),
            targets.norm_stdev
        );
        prop_assert_eq!(st.n, targets.cores);
        // Structural sanity.
        soc.validate().expect("valid soc");
        prop_assert_eq!(soc.core_count(), targets.cores + 1);
    }

    #[test]
    fn reconstruction_is_pure(targets in arb_targets()) {
        let a = reconstruct(&targets);
        let b = reconstruct(&targets);
        prop_assert_eq!(a, b);
    }
}
