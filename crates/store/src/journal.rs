//! Completion journal for resumable campaigns.
//!
//! A [`Journal`] is the campaign runner's durable memory: every unit
//! that ran to *completion* is recorded as `(unit name, content key,
//! summary)`. On re-invocation the runner looks each unit up before
//! running it — a match means "already done with these exact inputs"
//! and the unit is skipped, its report row rebuilt from the summary.
//!
//! The key half of the pair is what makes resumption safe: a unit is
//! only skipped when its *content address* (circuit + options hash)
//! matches the journaled one, so editing a campaign spec invalidates
//! exactly the units it changes.
//!
//! The journal file shares the store's corruption contract: it is
//! rewritten atomically on every record, carries a payload checksum,
//! and a damaged journal is evicted (logged, counted) and treated as
//! empty — the campaign recomputes instead of crashing.

use crate::backend::{RawDoc, StoreBackend};
use crate::{payload_check, IngestError, ResultStore, StoreError, STORE_SCHEMA};
use modsoc_metrics::json::{self, JsonValue};
use modsoc_metrics::MetricsSink;
use std::fs;
use std::path::Path;
use std::sync::Arc;

/// One journaled completion.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Campaign-unique unit name.
    pub unit: String,
    /// Content address (hex) of the unit's inputs when it completed.
    pub key: String,
    /// Caller-defined summary of the result (report row material).
    pub summary: JsonValue,
}

/// A durable list of completed units, merged-and-rewritten atomically
/// on every [`Journal::record`] under the backend's cross-process
/// advisory lock: two processes journaling the same campaign merge
/// their completions instead of losing them to a read-modify-write
/// race. The merge itself runs *backend-side* — on the local directory
/// for [`crate::LocalBackend`], on the serve daemon for the HTTP
/// backend — so N workers on separate machines share one journal.
#[derive(Debug)]
pub struct Journal {
    backend: Arc<dyn StoreBackend>,
    stem: String,
    entries: Vec<JournalEntry>,
}

/// Map a journal name to a safe file stem (alphanumerics, `-`, `_`).
pub(crate) fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn entry_to_json(e: &JournalEntry) -> JsonValue {
    JsonValue::Object(vec![
        ("unit".to_string(), JsonValue::String(e.unit.clone())),
        ("key".to_string(), JsonValue::String(e.key.clone())),
        ("summary".to_string(), e.summary.clone()),
    ])
}

fn entry_from_json(item: &JsonValue) -> Option<JournalEntry> {
    Some(JournalEntry {
        unit: item.get("unit")?.as_str()?.to_string(),
        key: item.get("key")?.as_str()?.to_string(),
        summary: item.get("summary")?.clone(),
    })
}

fn entries_to_json(entries: &[JournalEntry]) -> JsonValue {
    JsonValue::Array(entries.iter().map(entry_to_json).collect())
}

fn entries_from_json(doc: &JsonValue) -> Option<Vec<JournalEntry>> {
    if doc.get("schema").and_then(JsonValue::as_u64) != Some(STORE_SCHEMA) {
        return None;
    }
    let payload = doc.get("entries")?;
    if doc.get("check").and_then(JsonValue::as_str) != Some(payload_check(payload).as_str()) {
        return None;
    }
    let mut entries = Vec::new();
    for item in payload.as_array()? {
        entries.push(entry_from_json(item)?);
    }
    Some(entries)
}

fn entries_from_text(text: &str) -> Option<Vec<JournalEntry>> {
    json::parse(text).ok().as_ref().and_then(entries_from_json)
}

/// Serialize `entries` into the checksummed journal envelope.
fn journal_doc(entries: &[JournalEntry]) -> String {
    let payload = entries_to_json(entries);
    JsonValue::Object(vec![
        ("schema".to_string(), JsonValue::Number(STORE_SCHEMA as f64)),
        (
            "check".to_string(),
            JsonValue::String(payload_check(&payload)),
        ),
        ("entries".to_string(), payload),
    ])
    .to_compact()
}

/// The backend-side merge step for [`crate::LocalBackend`]: read the
/// on-disk journal at `path` (a corrupt or absent one contributes
/// nothing — `open_journal` owns corruption accounting), replace any
/// entry with the incoming entry's unit name, append the incoming
/// entry, and return the serialized merged document. Call with the
/// journal lock held.
pub(crate) fn merge_entry_into(path: &Path, entry_doc: &str) -> String {
    let mut entries = fs::read_to_string(path)
        .ok()
        .as_deref()
        .and_then(entries_from_text)
        .unwrap_or_default();
    if let Some(incoming) = json::parse(entry_doc)
        .ok()
        .as_ref()
        .and_then(entry_from_json)
    {
        entries.retain(|e| e.unit != incoming.unit);
        entries.push(incoming);
    }
    journal_doc(&entries)
}

impl Journal {
    /// Entries recorded so far, oldest first.
    #[must_use]
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Look up a completion by unit name *and* content key. A name
    /// match with a different key means the unit's inputs changed since
    /// it was journaled — not a completion.
    #[must_use]
    pub fn find(&self, unit: &str, key: &str) -> Option<&JournalEntry> {
        self.entries.iter().find(|e| e.unit == unit && e.key == key)
    }

    /// Record a completion and persist the journal atomically and
    /// durably (the local rewrite fsyncs both the file and its parent
    /// directory). An existing entry with the same unit name is
    /// replaced (re-run after a spec change).
    ///
    /// The merge-and-rewrite runs backend-side under the journal's
    /// cross-process advisory lock, and the merged document it returns
    /// — this entry plus every completion any other process has
    /// journaled — is adopted as this handle's entry list, so two
    /// campaign runners sharing one journal each keep the other's
    /// progress. Write retries are reported through `sink` as
    /// `store_retries`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the journal cannot be rewritten
    /// and [`StoreError::Contended`] when another process holds the
    /// journal lock past the deadline; the in-memory entry is kept
    /// either way so the current process still sees the completion.
    pub fn record(
        &mut self,
        entry: JournalEntry,
        sink: &dyn MetricsSink,
    ) -> Result<(), StoreError> {
        let entry_doc = entry_to_json(&entry).to_compact();
        self.entries.retain(|e| e.unit != entry.unit);
        self.entries.push(entry);
        let (merged, retries) = self.backend.merge_journal(&self.stem, &entry_doc)?;
        if retries > 0 {
            sink.add(modsoc_metrics::Counter::StoreRetries, retries);
        }
        if let Some(entries) = entries_from_text(&merged) {
            self.entries = entries;
        }
        Ok(())
    }

    /// Reload the journal from the backend, adopting completions other
    /// workers recorded since this handle last synced. Entries this
    /// handle knows that are missing from the backend copy (e.g. a
    /// record whose persist failed) are kept. A corrupt or unreadable
    /// backend copy changes nothing — the next `record` supersedes it.
    pub fn refresh(&mut self) {
        let RawDoc::Present(text) = self.backend.load_journal(&self.stem) else {
            return;
        };
        let Some(mut disk) = entries_from_text(&text) else {
            return;
        };
        for own in std::mem::take(&mut self.entries) {
            if !disk.iter().any(|e| e.unit == own.unit) {
                disk.push(own);
            }
        }
        self.entries = disk;
    }
}

impl ResultStore {
    /// Open the journal named `name` (created empty if absent). A
    /// corrupt journal — unreadable, malformed, schema-mismatched, or
    /// checksum-failed — is evicted and replaced by an empty one; the
    /// campaign then re-runs everything rather than trusting a damaged
    /// completion log.
    #[must_use]
    pub fn open_journal(&self, name: &str, sink: &dyn MetricsSink) -> Journal {
        let stem = sanitize(name);
        let mut journal = Journal {
            backend: Arc::clone(self.backend()),
            stem: stem.clone(),
            entries: Vec::new(),
        };
        // An absent journal is a fresh campaign; a present-but-unreadable
        // one (e.g. invalid UTF-8 from a torn write) is corruption, not
        // absence, and must be evicted like any other damage.
        match self.backend().load_journal(&stem) {
            RawDoc::Missing => {}
            RawDoc::Present(text) => match entries_from_text(&text) {
                Some(entries) => journal.entries = entries,
                None => {
                    if self.backend().remove_journal(&stem, "corrupt or stale") {
                        self.note_eviction(sink);
                    }
                }
            },
            RawDoc::Unreadable(why) => {
                if self.backend().remove_journal(&stem, &why) {
                    self.note_eviction(sink);
                }
            }
        }
        journal
    }

    /// Read the raw journal document named `name` without validating —
    /// the serve daemon's `GET /store/journal`.
    #[must_use]
    pub fn load_journal_raw(&self, name: &str) -> RawDoc {
        self.backend().load_journal(&sanitize(name))
    }

    /// Merge one wire completion entry (`{"unit":…,"key":…,
    /// "summary":…}`) into the journal named `name` and return the
    /// merged journal document — the serve daemon's
    /// `POST /store/journal`. Write retries are reported through
    /// `sink`.
    ///
    /// # Errors
    ///
    /// [`IngestError::Invalid`] when the entry document is malformed;
    /// [`IngestError::Store`] when the journal cannot be rewritten.
    pub fn merge_journal_raw(
        &self,
        name: &str,
        entry_doc: &str,
        sink: &dyn MetricsSink,
    ) -> Result<String, IngestError> {
        if json::parse(entry_doc)
            .ok()
            .as_ref()
            .and_then(entry_from_json)
            .is_none()
        {
            return Err(IngestError::Invalid(
                "journal entry must have unit, key and summary".to_string(),
            ));
        }
        let (merged, retries) = self
            .backend()
            .merge_journal(&sanitize(name), entry_doc)
            .map_err(IngestError::Store)?;
        self.note_retries(retries, sink);
        Ok(merged)
    }

    /// Remove the journal named `name` (corruption eviction requested
    /// by a remote reader — the serve daemon's journal evict). Counted
    /// when a file was actually removed.
    pub fn remove_journal(&self, name: &str, why: &str, sink: &dyn MetricsSink) -> bool {
        let removed = self.backend().remove_journal(&sanitize(name), why);
        if removed {
            self.note_eviction(sink);
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsoc_metrics::NullSink;
    use std::path::{Path, PathBuf};

    fn temp_store(tag: &str) -> (PathBuf, ResultStore) {
        let dir =
            std::env::temp_dir().join(format!("modsoc_journal_test_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        (dir, store)
    }

    fn entry(unit: &str, key: &str, patterns: u64) -> JournalEntry {
        JournalEntry {
            unit: unit.to_string(),
            key: key.to_string(),
            summary: JsonValue::Object(vec![(
                "patterns".to_string(),
                JsonValue::Number(patterns as f64),
            )]),
        }
    }

    #[test]
    fn record_and_reload() {
        let (dir, store) = temp_store("reload");
        let mut j = store.open_journal("campaign", &NullSink);
        j.record(entry("u1", "k1", 10), &NullSink).unwrap();
        j.record(entry("u2", "k2", 20), &NullSink).unwrap();
        let j2 = store.open_journal("campaign", &NullSink);
        assert_eq!(j2.entries().len(), 2);
        assert!(j2.find("u1", "k1").is_some());
        assert!(j2.find("u1", "wrong-key").is_none(), "key must match too");
        assert!(j2.find("u3", "k1").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rerecording_a_unit_replaces_it() {
        let (dir, store) = temp_store("replace");
        let mut j = store.open_journal("c", &NullSink);
        j.record(entry("u1", "old", 1), &NullSink).unwrap();
        j.record(entry("u1", "new", 2), &NullSink).unwrap();
        assert_eq!(j.entries().len(), 1);
        assert!(j.find("u1", "old").is_none());
        assert!(j.find("u1", "new").is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_journal_is_evicted_and_empty() {
        let (dir, store) = temp_store("corrupt");
        let mut j = store.open_journal("c", &NullSink);
        j.record(entry("u1", "k1", 10), &NullSink).unwrap();
        // Truncate the file mid-document.
        let path = dir.join("journals").join("c.json");
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 5]).unwrap();
        let j2 = store.open_journal("c", &NullSink);
        assert!(j2.entries().is_empty());
        assert_eq!(store.evictions(), 1);
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_entry_fails_the_checksum() {
        let (dir, store) = temp_store("tamper");
        let mut j = store.open_journal("c", &NullSink);
        j.record(entry("u1", "k1", 10), &NullSink).unwrap();
        let path = dir.join("journals").join("c.json");
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("\"k1\"", "\"kX\"")).unwrap();
        let j2 = store.open_journal("c", &NullSink);
        assert!(j2.entries().is_empty(), "tampered journal must not load");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_handles_merge_instead_of_losing_entries() {
        // Two handles of the same journal — the shape of two campaign
        // processes sharing a store. Each records its own unit; the
        // read-merge-rewrite under the lock must keep both.
        let (dir, store) = temp_store("merge");
        let mut a = store.open_journal("shared", &NullSink);
        let mut b = store.open_journal("shared", &NullSink);
        a.record(entry("unit-a", "ka", 1), &NullSink).unwrap();
        b.record(entry("unit-b", "kb", 2), &NullSink).unwrap();
        let reloaded = store.open_journal("shared", &NullSink);
        assert!(reloaded.find("unit-a", "ka").is_some(), "a's entry lost");
        assert!(reloaded.find("unit-b", "kb").is_some(), "b's entry lost");
        // b's handle also adopted a's entry during its merge.
        assert!(b.find("unit-a", "ka").is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_does_not_resurrect_a_replaced_unit() {
        let (dir, store) = temp_store("merge_replace");
        let mut a = store.open_journal("shared", &NullSink);
        a.record(entry("u1", "old", 1), &NullSink).unwrap();
        // A second handle (loaded after the first write) re-records u1
        // under a new key; the on-disk old entry must not win the merge.
        let mut b = store.open_journal("shared", &NullSink);
        b.record(entry("u1", "new", 2), &NullSink).unwrap();
        let reloaded = store.open_journal("shared", &NullSink);
        assert_eq!(reloaded.entries().len(), 1);
        assert!(reloaded.find("u1", "new").is_some());
        assert!(reloaded.find("u1", "old").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_names_are_sanitized() {
        let (dir, store) = temp_store("sanitize");
        let mut j = store.open_journal("weird name/../x", &NullSink);
        j.record(entry("u", "k", 1), &NullSink).unwrap();
        // Everything must stay inside journals/.
        let files: Vec<_> = fs::read_dir(dir.join("journals"))
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(files, vec!["weird_name____x.json".to_string()]);
        assert!(!Path::new(&dir).join("x.json").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
