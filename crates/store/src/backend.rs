//! Pluggable storage transports behind the [`ResultStore`] seam.
//!
//! [`ResultStore`](crate::ResultStore) owns the *semantics* of the store
//! — the entry envelope, the corruption taxonomy, hit/miss/eviction
//! accounting — while a [`StoreBackend`] owns the *transport*: where the
//! raw documents live and how they are read, written, listed and
//! claimed. Two backends exist:
//!
//! * [`LocalBackend`] — the original directory layout (`objects/`,
//!   `journals/`, `locks/`, and now `claims/`), byte-compatible with
//!   every store written before the trait existed.
//! * `HttpBackend` (in `modsoc_core::remote`) — the same operations over
//!   the `/store/*` endpoints of a `modsoc serve --store` daemon, so N
//!   campaign processes on separate machines share one store.
//!
//! The trait is deliberately *string-level*: backends move raw JSON
//! documents and never validate them. Validation happens exactly once,
//! on the consuming side — which is what makes a server-side byte flip
//! observable as a *client*-side eviction, the property the remote
//! corruption tests pin down.
//!
//! # Claims
//!
//! Distributed campaigns partition work by claiming `(journal, unit)`
//! pairs before running them. A claim is a lease: it is acquired by a
//! compare-and-swap (`create_new` on the claim file, the same primitive
//! as [`StoreLock`](crate::lock::StoreLock)), renewed by rewriting the
//! file (which bumps its mtime), and broken by any other worker once its
//! mtime is older than the requested lease — the mtime-style stale-break
//! that lets a killed worker's units be re-offered without coordination.

use crate::journal::sanitize;
use crate::lock::{LockOptions, StoreLock};
use crate::{atomic_write, io_err, StoreError, STORE_FORMAT, STORE_SCHEMA};
use modsoc_metrics::json::{self, JsonValue};
use std::fmt;
use std::fs;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// A raw document as the backend sees it: present (unvalidated text),
/// absent, or present but unreadable (e.g. invalid UTF-8 or a transport
/// failure mid-read). The consumer decides what each case means.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawDoc {
    /// The document exists; its text is returned unvalidated.
    Present(String),
    /// No document exists under this name — a plain miss.
    Missing,
    /// A document exists but could not be read; the payload is the
    /// reason, used as the eviction log message.
    Unreadable(String),
}

/// Size and recency of one stored entry, for the GC sweep.
#[derive(Debug, Clone)]
pub struct EntryMeta {
    /// The entry's content address (hex file stem).
    pub key_hex: String,
    /// On-disk size in bytes.
    pub bytes: u64,
    /// Last access time (falls back to mtime where atime is not
    /// tracked); the GC evicts oldest-first on this field.
    pub last_access: SystemTime,
}

/// What a claim call should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimAction {
    /// Take the claim if free (or stale); renew it if already ours.
    Acquire,
    /// Refresh our live claim's lease (bump the mtime).
    Renew,
    /// Drop our claim so the unit is immediately re-offerable.
    Release,
}

/// One claim call against a `(journal, unit)` pair.
#[derive(Debug, Clone)]
pub struct ClaimRequest<'a> {
    /// Journal (campaign) the unit belongs to.
    pub journal: &'a str,
    /// Unit name within the campaign.
    pub unit: &'a str,
    /// Content address the claimant intends to compute.
    pub key: &'a str,
    /// Claimant identity (must match on renew/release).
    pub owner: &'a str,
    /// Lease duration: a claim whose file is older than this is stale
    /// and may be broken by any other claimant.
    pub lease: Duration,
    /// What to do.
    pub action: ClaimAction,
}

/// Result of a claim call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaimOutcome {
    /// The claim is ours (acquire or renew succeeded).
    Acquired {
        /// `true` when acquiring required breaking another owner's
        /// expired lease — the killed-worker recovery path.
        broke_stale: bool,
    },
    /// Another live owner holds the claim.
    Held {
        /// The current holder, for logs.
        owner: String,
    },
    /// The claim was released (or was already gone).
    Released,
    /// Renew/release failed: the claim is not ours any more (expired
    /// and stolen, or never taken).
    NotOwner,
}

/// Transport seam under [`ResultStore`](crate::ResultStore): raw
/// document I/O plus claims. Implementations move bytes and never
/// validate envelopes — see the module docs.
pub trait StoreBackend: fmt::Debug + Send + Sync {
    /// Human-readable locator (directory path or base URL) for logs.
    fn describe(&self) -> String;

    /// `true` for network transports; the wrapper reports their traffic
    /// under the `store_remote_*` counters.
    fn is_remote(&self) -> bool;

    /// Local root directory, when the backend is a directory.
    fn local_root(&self) -> Option<&Path>;

    /// Read the raw entry document stored under `key_hex`.
    fn load_entry(&self, key_hex: &str) -> RawDoc;

    /// Write `doc` (a full validated envelope) under `key_hex`,
    /// replacing any previous entry. Returns the transient-failure
    /// retry count (reported as `store_retries`).
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the document cannot be durably written.
    fn store_entry(&self, key_hex: &str, doc: &str) -> Result<u64, StoreError>;

    /// Remove the entry under `key_hex` (eviction); logs and returns
    /// whether an entry was removed. Never an error.
    fn remove_entry(&self, key_hex: &str, why: &str) -> bool;

    /// List every stored entry with size and recency, for the GC
    /// sweep.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the listing fails — including on remote
    /// backends, which do not support enumeration (GC runs where the
    /// bytes live).
    fn entry_meta(&self) -> Result<Vec<EntryMeta>, StoreError>;

    /// Validate every stored entry and report `(valid, corrupt)`
    /// without evicting anything.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the store cannot be enumerated (remote
    /// backends included — sweeps run where the bytes live).
    fn verify_all(&self) -> Result<(usize, usize), StoreError>;

    /// Read the raw journal document stored under `stem` (already
    /// sanitized).
    fn load_journal(&self, stem: &str) -> RawDoc;

    /// Merge one completion entry document (`{"unit":…,"key":…,
    /// "summary":…}`) into the named journal under the journal's
    /// cross-process lock, and return the merged journal document plus
    /// the write retry count. The merge replaces any existing entry
    /// with the same unit name and keeps everything else — two workers
    /// sharing a journal each keep the other's progress.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the journal cannot be rewritten or its lock
    /// stays contended.
    fn merge_journal(&self, stem: &str, entry_doc: &str) -> Result<(String, u64), StoreError>;

    /// Remove the named journal (corruption eviction); logs and returns
    /// whether a file was removed.
    fn remove_journal(&self, stem: &str, why: &str) -> bool;

    /// Acquire, renew or release a `(journal, unit)` claim — the CAS
    /// primitive distributed campaigns partition work with.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on transport failure or when CAS races stay
    /// unresolved past a bounded number of rounds.
    fn claim(&self, req: &ClaimRequest<'_>) -> Result<ClaimOutcome, StoreError>;
}

/// The original directory-backed transport. Layout (byte-compatible
/// with pre-trait stores; `claims/` is created on open and simply
/// empty for stores that predate it):
///
/// ```text
/// <root>/manifest.json            {"format":"modsoc-store","schema":1}
/// <root>/objects/<key-hex>.json   entry envelopes
/// <root>/journals/<stem>.json     campaign completion journals
/// <root>/locks/<stem>.lock        advisory locks (held = file exists)
/// <root>/claims/<j>--<u>.claim    campaign unit leases
/// ```
#[derive(Debug)]
pub struct LocalBackend {
    root: PathBuf,
}

impl LocalBackend {
    /// Open (creating if necessary) the directory store rooted at
    /// `dir`, enforcing the manifest: a corrupt or schema-mismatched
    /// manifest resets the store. Returns the backend plus the number
    /// of files evicted by such a reset.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory tree or manifest cannot
    /// be created.
    pub fn open(dir: &Path) -> Result<(LocalBackend, u64), StoreError> {
        let backend = LocalBackend {
            root: dir.to_path_buf(),
        };
        for sub in [
            backend.objects_dir(),
            backend.journals_dir(),
            backend.locks_dir(),
            backend.claims_dir(),
        ] {
            fs::create_dir_all(&sub).map_err(|e| io_err(&sub, e))?;
        }
        let manifest = backend.root.join("manifest.json");
        let mut reset_evictions = 0;
        if !backend.manifest_is_current(&manifest) {
            if manifest.exists() {
                eprintln!(
                    "store: manifest at {} is corrupt or from another schema; resetting store",
                    manifest.display()
                );
                reset_evictions = backend.evict_all();
            }
            let doc = JsonValue::Object(vec![
                (
                    "format".to_string(),
                    JsonValue::String(STORE_FORMAT.to_string()),
                ),
                ("schema".to_string(), JsonValue::Number(STORE_SCHEMA as f64)),
            ]);
            atomic_write(&manifest, &doc.to_compact())?;
        }
        Ok((backend, reset_evictions))
    }

    fn objects_dir(&self) -> PathBuf {
        self.root.join("objects")
    }

    fn journals_dir(&self) -> PathBuf {
        self.root.join("journals")
    }

    fn locks_dir(&self) -> PathBuf {
        self.root.join("locks")
    }

    fn claims_dir(&self) -> PathBuf {
        self.root.join("claims")
    }

    fn entry_path(&self, key_hex: &str) -> PathBuf {
        self.objects_dir().join(format!("{key_hex}.json"))
    }

    fn journal_path(&self, stem: &str) -> PathBuf {
        self.journals_dir().join(format!("{stem}.json"))
    }

    pub(crate) fn journal_lock_path(&self, stem: &str) -> PathBuf {
        self.locks_dir().join(format!("journal-{stem}.lock"))
    }

    pub(crate) fn entry_lock_path(&self, key_hex: &str) -> PathBuf {
        self.locks_dir().join(format!("{key_hex}.lock"))
    }

    fn claim_path(&self, journal: &str, unit: &str) -> PathBuf {
        self.claims_dir()
            .join(format!("{}--{}.claim", sanitize(journal), sanitize(unit)))
    }

    fn manifest_is_current(&self, manifest: &Path) -> bool {
        let Ok(text) = fs::read_to_string(manifest) else {
            return false;
        };
        let Ok(doc) = json::parse(&text) else {
            return false;
        };
        doc.get("format").and_then(JsonValue::as_str) == Some(STORE_FORMAT)
            && doc.get("schema").and_then(JsonValue::as_u64) == Some(STORE_SCHEMA)
    }

    /// Remove every object and journal; returns how many files were
    /// removed. Used when the manifest says the entries cannot be
    /// trusted.
    fn evict_all(&self) -> u64 {
        let mut removed = 0;
        for dir in [self.objects_dir(), self.journals_dir()] {
            let Ok(entries) = fs::read_dir(&dir) else {
                continue;
            };
            for entry in entries.flatten() {
                if fs::remove_file(entry.path()).is_ok() {
                    removed += 1;
                }
            }
        }
        removed
    }

    fn read_doc(path: &Path) -> RawDoc {
        match fs::File::open(path) {
            Err(_) => RawDoc::Missing,
            Ok(mut f) => {
                let mut text = String::new();
                match f.read_to_string(&mut text) {
                    Ok(_) => RawDoc::Present(text),
                    Err(_) => RawDoc::Unreadable("unreadable".to_string()),
                }
            }
        }
    }

    fn claim_owner(path: &Path) -> Option<String> {
        let text = fs::read_to_string(path).ok()?;
        let doc = json::parse(&text).ok()?;
        Some(doc.get("owner")?.as_str()?.to_string())
    }

    fn write_claim(path: &Path, req: &ClaimRequest<'_>) -> Result<fs::File, std::io::Error> {
        let mut f = fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)?;
        f.write_all(claim_doc(req).as_bytes())?;
        Ok(f)
    }
}

fn claim_doc(req: &ClaimRequest<'_>) -> String {
    JsonValue::Object(vec![
        (
            "owner".to_string(),
            JsonValue::String(req.owner.to_string()),
        ),
        ("unit".to_string(), JsonValue::String(req.unit.to_string())),
        ("key".to_string(), JsonValue::String(req.key.to_string())),
    ])
    .to_compact()
}

/// CAS rounds before an acquire gives up on a remove/create race.
const CLAIM_ATTEMPTS: u32 = 32;

impl StoreBackend for LocalBackend {
    fn describe(&self) -> String {
        self.root.display().to_string()
    }

    fn is_remote(&self) -> bool {
        false
    }

    fn local_root(&self) -> Option<&Path> {
        Some(&self.root)
    }

    fn load_entry(&self, key_hex: &str) -> RawDoc {
        LocalBackend::read_doc(&self.entry_path(key_hex))
    }

    fn store_entry(&self, key_hex: &str, doc: &str) -> Result<u64, StoreError> {
        let _guard = StoreLock::acquire(&self.entry_lock_path(key_hex), LockOptions::default())?;
        atomic_write(&self.entry_path(key_hex), doc)
    }

    fn remove_entry(&self, key_hex: &str, why: &str) -> bool {
        let path = self.entry_path(key_hex);
        if !path.exists() {
            return false;
        }
        eprintln!("store: evicting {} ({why})", path.display());
        let _ = fs::remove_file(&path);
        true
    }

    fn entry_meta(&self) -> Result<Vec<EntryMeta>, StoreError> {
        let dir = self.objects_dir();
        let entries = fs::read_dir(&dir).map_err(|e| io_err(&dir, e))?;
        let mut metas = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue; // tmp files and strays are not entries
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Ok(meta) = entry.metadata() else {
                continue;
            };
            metas.push(EntryMeta {
                key_hex: stem.to_string(),
                bytes: meta.len(),
                last_access: meta
                    .accessed()
                    .or_else(|_| meta.modified())
                    .unwrap_or(SystemTime::UNIX_EPOCH),
            });
        }
        Ok(metas)
    }

    fn verify_all(&self) -> Result<(usize, usize), StoreError> {
        let dir = self.objects_dir();
        let entries = fs::read_dir(&dir).map_err(|e| io_err(&dir, e))?;
        let (mut valid, mut corrupt) = (0usize, 0usize);
        for entry in entries.flatten() {
            let path = entry.path();
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default()
                .to_string();
            let ok = fs::read_to_string(&path)
                .ok()
                .is_some_and(|text| crate::validate_entry_doc(&stem, &text).is_ok());
            if ok {
                valid += 1;
            } else {
                corrupt += 1;
            }
        }
        Ok((valid, corrupt))
    }

    fn load_journal(&self, stem: &str) -> RawDoc {
        LocalBackend::read_doc(&self.journal_path(stem))
    }

    fn merge_journal(&self, stem: &str, entry_doc: &str) -> Result<(String, u64), StoreError> {
        let path = self.journal_path(stem);
        let _guard = StoreLock::acquire(&self.journal_lock_path(stem), LockOptions::default())?;
        let merged = crate::journal::merge_entry_into(&path, entry_doc);
        let retries = atomic_write(&path, &merged)?;
        Ok((merged, retries))
    }

    fn remove_journal(&self, stem: &str, why: &str) -> bool {
        let path = self.journal_path(stem);
        if !path.exists() {
            return false;
        }
        eprintln!("store: evicting journal {} ({why})", path.display());
        let _ = fs::remove_file(&path);
        true
    }

    fn claim(&self, req: &ClaimRequest<'_>) -> Result<ClaimOutcome, StoreError> {
        let path = self.claim_path(req.journal, req.unit);
        match req.action {
            ClaimAction::Acquire => {
                let mut broke_stale = false;
                for _ in 0..CLAIM_ATTEMPTS {
                    match LocalBackend::write_claim(&path, req) {
                        Ok(_) => return Ok(ClaimOutcome::Acquired { broke_stale }),
                        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                            let age = fs::metadata(&path)
                                .and_then(|m| m.modified())
                                .ok()
                                .and_then(|m| m.elapsed().ok());
                            match age {
                                // Vanished or clock-skewed: retry the CAS.
                                None => continue,
                                Some(age) if age > req.lease => {
                                    // Stale lease: break it and retry. The
                                    // create_new above stays the arbiter —
                                    // if two breakers race, one wins and
                                    // the other loops into Held.
                                    let _ = fs::remove_file(&path);
                                    broke_stale = true;
                                }
                                Some(_) => {
                                    let owner =
                                        LocalBackend::claim_owner(&path).unwrap_or_default();
                                    if owner == req.owner {
                                        // Re-acquiring our own live claim
                                        // just renews the lease.
                                        let _ = fs::write(&path, claim_doc(req));
                                        return Ok(ClaimOutcome::Acquired { broke_stale });
                                    }
                                    return Ok(ClaimOutcome::Held { owner });
                                }
                            }
                        }
                        Err(e) => {
                            let _ = fs::remove_file(&path);
                            return Err(io_err(&path, e));
                        }
                    }
                }
                Err(StoreError::Contended { path })
            }
            ClaimAction::Renew => match LocalBackend::claim_owner(&path) {
                Some(owner) if owner == req.owner => {
                    // Rewrite bumps the mtime, extending the lease.
                    let _ = fs::write(&path, claim_doc(req));
                    Ok(ClaimOutcome::Acquired { broke_stale: false })
                }
                _ => Ok(ClaimOutcome::NotOwner),
            },
            ClaimAction::Release => {
                if !path.exists() {
                    return Ok(ClaimOutcome::Released);
                }
                match LocalBackend::claim_owner(&path) {
                    Some(owner) if owner == req.owner => {
                        let _ = fs::remove_file(&path);
                        Ok(ClaimOutcome::Released)
                    }
                    // Unreadable claim files are treated as abandoned.
                    None => {
                        let _ = fs::remove_file(&path);
                        Ok(ClaimOutcome::Released)
                    }
                    Some(_) => Ok(ClaimOutcome::NotOwner),
                }
            }
        }
    }
}
