//! Cross-process advisory file locking for store writers.
//!
//! The store's entry writes are already torn-proof (tmp file + atomic
//! rename), but two *cooperating processes* — a `modsoc serve` daemon
//! and a sidecar `modsoc campaign` sharing one store — also need
//! read-modify-write sections (journal rewrites) and "one writer at a
//! time per entry" discipline. [`StoreLock`] provides that in the house
//! style: a lock *file* created with `create_new` (`O_EXCL` semantics,
//! atomic on every platform std supports), retried under contention with
//! jittered exponential backoff, and broken when demonstrably stale.
//!
//! The lock is advisory: nothing stops a process that does not take it.
//! Every writer inside this workspace takes it, which is the contract
//! that matters.
//!
//! # Staleness
//!
//! A holder that crashes leaves its lock file behind. Waiters treat a
//! lock file whose mtime is older than [`LockOptions::stale_after`] as
//! abandoned and remove it. The stat-then-remove pair is racy in
//! principle (a fresh lock could land between the two calls), but the
//! window is microseconds against a staleness threshold of tens of
//! seconds, and the worst case — two writers both proceeding — degrades
//! to the store's existing last-writer-wins atomic-rename behavior, not
//! to corruption.

use crate::{io_err, StoreError};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Tuning for [`StoreLock::acquire`].
#[derive(Debug, Clone, Copy)]
pub struct LockOptions {
    /// How long a waiter keeps retrying before giving up with
    /// [`StoreError::Contended`].
    pub deadline: Duration,
    /// Age past which a held lock is presumed abandoned (holder crashed)
    /// and broken by a waiter.
    pub stale_after: Duration,
}

impl Default for LockOptions {
    fn default() -> LockOptions {
        LockOptions {
            deadline: Duration::from_secs(10),
            stale_after: Duration::from_secs(30),
        }
    }
}

/// A held advisory lock; released (lock file removed) on drop.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

/// Advance an xorshift64 state and return the next value. Seeded from
/// wall-clock nanos and the pid — the jitter only needs to decorrelate
/// concurrent waiters, not be reproducible.
pub(crate) fn next_jitter(state: &mut u64) -> u64 {
    if *state == 0 {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::from(d.subsec_nanos()))
            .unwrap_or(0xDEAD_BEEF);
        *state = nanos
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(std::process::id()) | 1);
    }
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Exponential backoff with jitter: attempt 0 sleeps ~0.5–1 ms, each
/// further attempt doubles the base up to ~16 ms. The jitter spreads
/// waiters so they do not stampede the lock file in phase.
pub(crate) fn backoff_delay(attempt: u32, rng: &mut u64) -> Duration {
    let base_us = 500u64 << attempt.min(5);
    Duration::from_micros(base_us + next_jitter(rng) % base_us)
}

impl StoreLock {
    /// Acquire the lock at `path`, retrying with jittered backoff while
    /// a live holder exists and breaking the lock once it looks stale.
    ///
    /// # Errors
    ///
    /// [`StoreError::Contended`] when a live holder outlasts
    /// `opts.deadline`; [`StoreError::Io`] when the lock file cannot be
    /// created for any reason other than contention.
    pub fn acquire(path: &Path, opts: LockOptions) -> Result<StoreLock, StoreError> {
        let start = Instant::now();
        let mut rng = 0u64;
        let mut attempt = 0u32;
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(path)
            {
                Ok(mut f) => {
                    // Best-effort holder tag for humans debugging a
                    // stuck lock; staleness is judged by mtime, not by
                    // parsing this.
                    use std::io::Write as _;
                    let _ = writeln!(f, "pid {}", std::process::id());
                    return Ok(StoreLock {
                        path: path.to_path_buf(),
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if lock_is_stale(path, opts.stale_after) {
                        let _ = fs::remove_file(path);
                        continue; // retry the create immediately
                    }
                    if start.elapsed() >= opts.deadline {
                        return Err(StoreError::Contended {
                            path: path.to_path_buf(),
                        });
                    }
                    std::thread::sleep(backoff_delay(attempt, &mut rng));
                    attempt = attempt.saturating_add(1);
                }
                Err(e) => return Err(io_err(path, e)),
            }
        }
    }

    /// Path of the lock file (for diagnostics).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn lock_is_stale(path: &Path, stale_after: Duration) -> bool {
    let Ok(meta) = fs::metadata(path) else {
        // Vanished between create_new failing and the stat: the holder
        // released; not stale, just retry.
        return false;
    };
    match meta.modified().map(|m| m.elapsed()) {
        Ok(Ok(age)) => age >= stale_after,
        _ => false,
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_lock(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("modsoc_lock_test_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("x.lock")
    }

    #[test]
    fn acquire_release_reacquire() {
        let path = temp_lock("rr");
        let l = StoreLock::acquire(&path, LockOptions::default()).unwrap();
        assert!(path.exists());
        drop(l);
        assert!(!path.exists(), "drop must release");
        let _l = StoreLock::acquire(&path, LockOptions::default()).unwrap();
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn contended_lock_times_out() {
        let path = temp_lock("timeout");
        let _held = StoreLock::acquire(&path, LockOptions::default()).unwrap();
        let opts = LockOptions {
            deadline: Duration::from_millis(50),
            stale_after: Duration::from_secs(600),
        };
        match StoreLock::acquire(&path, opts) {
            Err(StoreError::Contended { path: p }) => assert_eq!(p, path),
            other => panic!("expected Contended, got {other:?}"),
        }
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn stale_lock_is_broken() {
        let path = temp_lock("stale");
        // A lock file nobody holds, old enough to be presumed abandoned
        // under a zero staleness threshold.
        fs::write(&path, "pid 0\n").unwrap();
        let opts = LockOptions {
            deadline: Duration::from_secs(5),
            stale_after: Duration::ZERO,
        };
        let l = StoreLock::acquire(&path, opts).unwrap();
        drop(l);
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn threads_serialize_through_the_lock() {
        let path = temp_lock("threads");
        let in_section = AtomicU64::new(0);
        let max_seen = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..20 {
                        let _l = StoreLock::acquire(&path, LockOptions::default()).unwrap();
                        let now = in_section.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(now, Ordering::SeqCst);
                        in_section.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "mutual exclusion");
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn backoff_grows_and_stays_bounded() {
        let mut rng = 0u64;
        for attempt in 0..10 {
            let d = backoff_delay(attempt, &mut rng);
            let base = Duration::from_micros(500u64 << attempt.min(5));
            assert!(d >= base, "attempt {attempt}: {d:?} < base {base:?}");
            assert!(d < base * 2, "attempt {attempt}: {d:?} >= 2x base");
        }
    }
}
