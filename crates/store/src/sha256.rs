//! Hand-rolled SHA-256 (FIPS 180-4).
//!
//! The workspace's dependency policy rules out a crypto crate, and the
//! store only needs a *stable, collision-resistant content address* —
//! no secrecy, no side-channel hardening. This is the textbook
//! compression function over 64-byte blocks with streaming update.

/// Streaming SHA-256 state.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Sha256 {
        Sha256::new()
    }
}

#[rustfmt::skip]
const K: [u32; 64] = [
    0x428a_2f98, 0x7137_4491, 0xb5c0_fbcf, 0xe9b5_dba5, 0x3956_c25b, 0x59f1_11f1, 0x923f_82a4,
    0xab1c_5ed5, 0xd807_aa98, 0x1283_5b01, 0x2431_85be, 0x550c_7dc3, 0x72be_5d74, 0x80de_b1fe,
    0x9bdc_06a7, 0xc19b_f174, 0xe49b_69c1, 0xefbe_4786, 0x0fc1_9dc6, 0x240c_a1cc, 0x2de9_2c6f,
    0x4a74_84aa, 0x5cb0_a9dc, 0x76f9_88da, 0x983e_5152, 0xa831_c66d, 0xb003_27c8, 0xbf59_7fc7,
    0xc6e0_0bf3, 0xd5a7_9147, 0x06ca_6351, 0x1429_2967, 0x27b7_0a85, 0x2e1b_2138, 0x4d2c_6dfc,
    0x5338_0d13, 0x650a_7354, 0x766a_0abb, 0x81c2_c92e, 0x9272_2c85, 0xa2bf_e8a1, 0xa81a_664b,
    0xc24b_8b70, 0xc76c_51a3, 0xd192_e819, 0xd699_0624, 0xf40e_3585, 0x106a_a070, 0x19a4_c116,
    0x1e37_6c08, 0x2748_774c, 0x34b0_bcb5, 0x391c_0cb3, 0x4ed8_aa4a, 0x5b9c_ca4f, 0x682e_6ff3,
    0x748f_82ee, 0x78a5_636f, 0x84c8_7814, 0x8cc7_0208, 0x90be_fffa, 0xa450_6ceb, 0xbef9_a3f7,
    0xc671_78f2,
];

impl Sha256 {
    /// Fresh state (FIPS 180-4 initial hash value).
    #[must_use]
    pub fn new() -> Sha256 {
        Sha256 {
            state: [
                0x6a09_e667,
                0xbb67_ae85,
                0x3c6e_f372,
                0xa54f_f53a,
                0x510e_527f,
                0x9b05_688c,
                0x1f83_d9ab,
                0x5be0_cd19,
            ],
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb more message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Pad and produce the 32-byte digest.
    #[must_use]
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length goes straight into the buffer: update() would double
        // count total_len, and buf_len is exactly 56 here.
        self.buf[56..].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot digest.
#[must_use]
pub fn digest(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Lowercase hex rendering of a digest.
#[must_use]
pub fn hex(digest: &[u8; 32]) -> String {
    let mut out = String::with_capacity(64);
    for b in digest {
        use std::fmt::Write as _;
        let _ = write!(out, "{b:02x}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST FIPS 180-4 / Cavp known-answer vectors.
    #[test]
    fn empty_message() {
        assert_eq!(
            hex(&digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_streaming() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 10_000];
        for _ in 0..100 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_one_shot_at_odd_boundaries() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let expected = digest(&data);
        for split in [0, 1, 63, 64, 65, 127, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expected, "split={split}");
        }
    }
}
