//! Content-addressed on-disk result store for `modsoc`.
//!
//! The DATE 2008 experiments re-run the same per-core ATPG jobs over and
//! over — every `modsoc experiment soc2` invocation regenerates the same
//! four cores from the same seeds and solves them from scratch. This
//! crate provides the bottom layer that makes those runs resumable and
//! cheap to repeat:
//!
//! * [`ResultStore`] — a directory of immutable JSON entries keyed by a
//!   SHA-256 content address ([`StoreKey`], computed by callers from a
//!   canonical serialization of the work unit). Writes are atomic
//!   (tmp file + rename); reads validate a payload checksum so a
//!   truncated or bit-flipped entry is *evicted and recomputed*, never
//!   trusted and never a crash.
//! * [`Journal`] — an append-style completion log used by the campaign
//!   runner: each finished unit is recorded with its key and a summary,
//!   and a re-invocation skips units whose `(unit, key)` pair is already
//!   journaled.
//! * [`sha256`] — the hand-rolled FIPS 180-4 digest both of the above
//!   are built on (the workspace vendors no crypto crate).
//!
//! The store keeps no size bounds and no remote backends (see ROADMAP
//! open items). Concurrent writers are safe at three levels: the atomic
//! rename makes individual entries torn-proof, entry and journal writes
//! additionally take a cross-process advisory [`lock::StoreLock`]
//! (lock-file + jittered backoff, see [`lock`]) so a `modsoc serve`
//! daemon and a sidecar campaign can share one store, and transient
//! `create`/`rename` failures are retried with bounded backoff rather
//! than surfacing as spurious errors.
//!
//! Cache traffic is observable through [`modsoc_metrics`]: every
//! [`ResultStore`] operation bumps a process-local counter *and* reports
//! through a [`MetricsSink`] (`store_hits`, `store_misses`,
//! `store_writes`, `store_evictions`, `store_retries`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod lock;
pub mod sha256;

pub use journal::{Journal, JournalEntry};
pub use lock::{LockOptions, StoreLock};

use modsoc_metrics::json::{self, JsonValue};
use modsoc_metrics::{Counter, MetricsSink};
use std::fmt;
use std::fs;
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// On-disk schema version. Bumping it invalidates every existing entry:
/// `open` evicts objects whose manifest does not match, and `get`
/// rejects entries recorded under a different schema.
pub const STORE_SCHEMA: u64 = 1;

/// Identifying tag written into the manifest so a store directory is
/// recognizable (and a random directory is not mistaken for one).
pub const STORE_FORMAT: &str = "modsoc-store";

/// A 32-byte content address (SHA-256 digest) naming one store entry.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreKey(pub [u8; 32]);

impl StoreKey {
    /// Lowercase hex form — also the entry's file stem on disk.
    #[must_use]
    pub fn hex(&self) -> String {
        sha256::hex(&self.0)
    }
}

impl fmt::Debug for StoreKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StoreKey({})", self.hex())
    }
}

impl fmt::Display for StoreKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Errors surfaced by store operations that the caller must handle
/// (directory creation, manifest writes, entry writes). Read-side
/// corruption is *not* an error — corrupt entries are evicted and the
/// read reports a miss.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// An I/O operation on the store directory failed.
    Io {
        /// Path the operation touched.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// An advisory lock stayed held by a live owner past the acquire
    /// deadline.
    Contended {
        /// The lock file that could not be acquired.
        path: PathBuf,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store I/O error at {}: {source}", path.display())
            }
            StoreError::Contended { path } => {
                write!(f, "store lock at {} is contended", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Contended { .. } => None,
        }
    }
}

pub(crate) fn io_err(path: &Path, source: io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Attempts (initial try + retries) before a write failure is final.
const WRITE_ATTEMPTS: u32 = 4;

/// Write `contents` to `path` atomically and durably: write a sibling
/// tmp file in the same directory, flush it, rename over the
/// destination, then fsync the parent directory so the rename itself
/// survives a power cut. Readers either see the old entry or the
/// complete new one, never a torn write.
///
/// Transient `create`/`rename` failures (e.g. an overloaded filesystem
/// or an antivirus-style scanner briefly pinning the tmp file) are
/// retried with jittered backoff up to [`WRITE_ATTEMPTS`]; the returned
/// count is how many retries were needed (0 on a clean first attempt),
/// reported upstream as `store_retries`.
pub(crate) fn atomic_write(path: &Path, contents: &str) -> Result<u64, StoreError> {
    atomic_write_with_faults(path, contents, &mut |_| None)
}

/// [`atomic_write`] with an injectable fault seam: `inject(attempt)`
/// may return an error to substitute for that attempt's rename, letting
/// tests exercise the retry path without a misbehaving filesystem.
pub(crate) fn atomic_write_with_faults(
    path: &Path,
    contents: &str,
    inject: &mut dyn FnMut(u32) -> Option<io::Error>,
) -> Result<u64, StoreError> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let stem = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "entry".to_string());
    let tmp = dir.join(format!(".tmp-{}-{stem}", std::process::id()));
    let mut rng = 0u64;
    let mut last_err = None;
    for attempt in 0..WRITE_ATTEMPTS {
        if attempt > 0 {
            std::thread::sleep(lock::backoff_delay(attempt - 1, &mut rng));
        }
        match write_once(&tmp, path, contents, inject(attempt)) {
            Ok(()) => {
                // The rename is atomic but only durable once the parent
                // directory's own entry list reaches the disk; without
                // this fsync a power loss can resurrect the replaced
                // file (or un-create this one). Best-effort: not every
                // platform lets a directory be opened for syncing.
                if let Ok(d) = fs::File::open(dir) {
                    let _ = d.sync_all();
                }
                return Ok(u64::from(attempt));
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                last_err = Some(e);
            }
        }
    }
    Err(io_err(
        path,
        last_err.unwrap_or_else(|| io::Error::other("write failed")),
    ))
}

fn write_once(
    tmp: &Path,
    path: &Path,
    contents: &str,
    injected: Option<io::Error>,
) -> Result<(), io::Error> {
    let mut f = fs::File::create(tmp)?;
    f.write_all(contents.as_bytes())?;
    f.sync_all()?;
    drop(f);
    if let Some(e) = injected {
        return Err(e);
    }
    fs::rename(tmp, path)
}

/// Checksum guarding a JSON payload: the SHA-256 hex digest of its
/// compact serialization. Stored alongside the payload so byte flips
/// anywhere in the entry are detected on read.
#[must_use]
pub fn payload_check(payload: &JsonValue) -> String {
    sha256::hex(&sha256::digest(payload.to_compact().as_bytes()))
}

/// A content-addressed result store rooted at one directory.
///
/// Layout:
///
/// ```text
/// <root>/manifest.json            {"format":"modsoc-store","schema":1}
/// <root>/objects/<key-hex>.json   {"schema":1,"key":…,"check":…,"payload":…}
/// <root>/journals/<name>.json     campaign completion journals
/// <root>/locks/<name>.lock        advisory locks (held = file exists)
/// ```
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    evictions: AtomicU64,
    retries: AtomicU64,
}

impl ResultStore {
    /// Open (creating if necessary) the store rooted at `dir`.
    ///
    /// A missing directory is created and stamped with a manifest. An
    /// existing directory with a corrupt or schema-mismatched manifest
    /// is *reset*: every object and journal is evicted (counted) and a
    /// fresh manifest is written — stale-format entries must never be
    /// decoded as current-format ones.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory tree or manifest
    /// cannot be created.
    pub fn open(dir: &Path) -> Result<ResultStore, StoreError> {
        let store = ResultStore {
            root: dir.to_path_buf(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        };
        fs::create_dir_all(store.objects_dir()).map_err(|e| io_err(&store.objects_dir(), e))?;
        fs::create_dir_all(store.journals_dir()).map_err(|e| io_err(&store.journals_dir(), e))?;
        fs::create_dir_all(store.locks_dir()).map_err(|e| io_err(&store.locks_dir(), e))?;
        let manifest = store.root.join("manifest.json");
        if !store.manifest_is_current(&manifest) {
            if manifest.exists() {
                eprintln!(
                    "store: manifest at {} is corrupt or from another schema; resetting store",
                    manifest.display()
                );
                store.evict_all();
            }
            let doc = JsonValue::Object(vec![
                (
                    "format".to_string(),
                    JsonValue::String(STORE_FORMAT.to_string()),
                ),
                ("schema".to_string(), JsonValue::Number(STORE_SCHEMA as f64)),
            ]);
            atomic_write(&manifest, &doc.to_compact())?;
        }
        Ok(store)
    }

    /// Root directory this store was opened at.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn objects_dir(&self) -> PathBuf {
        self.root.join("objects")
    }

    pub(crate) fn journals_dir(&self) -> PathBuf {
        self.root.join("journals")
    }

    pub(crate) fn locks_dir(&self) -> PathBuf {
        self.root.join("locks")
    }

    fn entry_path(&self, key: &StoreKey) -> PathBuf {
        self.objects_dir().join(format!("{}.json", key.hex()))
    }

    /// Take the cross-process advisory lock guarding `key`'s entry —
    /// the same lock [`ResultStore::put`] takes internally. The lock is
    /// not re-entrant: do not call `put` for `key` while holding it
    /// (release first; the write itself re-serializes).
    ///
    /// # Errors
    ///
    /// [`StoreError::Contended`] when a live holder outlasts the
    /// deadline; [`StoreError::Io`] when the lock file cannot be
    /// created.
    pub fn lock_entry(&self, key: &StoreKey, opts: LockOptions) -> Result<StoreLock, StoreError> {
        StoreLock::acquire(&self.locks_dir().join(format!("{}.lock", key.hex())), opts)
    }

    fn manifest_is_current(&self, manifest: &Path) -> bool {
        let Ok(text) = fs::read_to_string(manifest) else {
            return false;
        };
        let Ok(doc) = json::parse(&text) else {
            return false;
        };
        doc.get("format").and_then(JsonValue::as_str) == Some(STORE_FORMAT)
            && doc.get("schema").and_then(JsonValue::as_u64) == Some(STORE_SCHEMA)
    }

    /// Remove every object and journal, counting each removed file as an
    /// eviction. Used when the manifest says the entries cannot be
    /// trusted.
    fn evict_all(&self) {
        for dir in [self.objects_dir(), self.journals_dir()] {
            let Ok(entries) = fs::read_dir(&dir) else {
                continue;
            };
            for entry in entries.flatten() {
                if fs::remove_file(entry.path()).is_ok() {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Remove one entry file because it failed validation; counted as an
    /// eviction and logged, never an error.
    fn evict_entry(&self, path: &Path, why: &str, sink: &dyn MetricsSink) {
        eprintln!("store: evicting {} ({why})", path.display());
        let _ = fs::remove_file(path);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        sink.add(Counter::StoreEvictions, 1);
    }

    /// Remove the entry for `key` because the caller could not use it —
    /// e.g. the envelope checksum held but the payload did not decode
    /// into the expected result shape. Logged and counted as an
    /// eviction; a no-op when no entry exists.
    pub fn evict(&self, key: &StoreKey, why: &str, sink: &dyn MetricsSink) {
        let path = self.entry_path(key);
        if path.exists() {
            self.evict_entry(&path, why, sink);
        }
    }

    /// Fetch the payload stored under `key`, or `None` on a miss.
    ///
    /// Every failure mode — missing file, unreadable file, malformed
    /// JSON, schema mismatch, key mismatch, checksum mismatch — is a
    /// miss; validation failures additionally evict the entry so the
    /// next write replaces it. This is the corruption-tolerance
    /// contract: a damaged store degrades to recomputation, it does not
    /// crash or serve garbage.
    pub fn get(&self, key: &StoreKey, sink: &dyn MetricsSink) -> Option<JsonValue> {
        let path = self.entry_path(key);
        let mut text = String::new();
        match fs::File::open(&path) {
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                sink.add(Counter::StoreMisses, 1);
                return None;
            }
            Ok(mut f) => {
                if f.read_to_string(&mut text).is_err() {
                    self.evict_entry(&path, "unreadable", sink);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    sink.add(Counter::StoreMisses, 1);
                    return None;
                }
            }
        }
        let reject = |why: &str| {
            self.evict_entry(&path, why, sink);
            self.misses.fetch_add(1, Ordering::Relaxed);
            sink.add(Counter::StoreMisses, 1);
        };
        let Ok(doc) = json::parse(&text) else {
            reject("malformed JSON");
            return None;
        };
        if doc.get("schema").and_then(JsonValue::as_u64) != Some(STORE_SCHEMA) {
            reject("schema mismatch");
            return None;
        }
        if doc.get("key").and_then(JsonValue::as_str) != Some(key.hex().as_str()) {
            reject("key mismatch");
            return None;
        }
        let Some(payload) = doc.get("payload") else {
            reject("missing payload");
            return None;
        };
        if doc.get("check").and_then(JsonValue::as_str) != Some(payload_check(payload).as_str()) {
            reject("checksum mismatch");
            return None;
        }
        let payload = payload.clone();
        self.hits.fetch_add(1, Ordering::Relaxed);
        sink.add(Counter::StoreHits, 1);
        Some(payload)
    }

    /// Store `payload` under `key` (atomically, replacing any previous
    /// entry for the key). The write holds the key's cross-process
    /// advisory lock, so a daemon and a sidecar campaign sharing this
    /// store never interleave writes to one entry.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the entry cannot be written and
    /// [`StoreError::Contended`] when another live process holds the
    /// entry lock past the deadline; callers treat both as non-fatal
    /// (the result was computed, only the cache write failed).
    pub fn put(
        &self,
        key: &StoreKey,
        payload: &JsonValue,
        sink: &dyn MetricsSink,
    ) -> Result<(), StoreError> {
        let doc = JsonValue::Object(vec![
            ("schema".to_string(), JsonValue::Number(STORE_SCHEMA as f64)),
            ("key".to_string(), JsonValue::String(key.hex())),
            (
                "check".to_string(),
                JsonValue::String(payload_check(payload)),
            ),
            ("payload".to_string(), payload.clone()),
        ]);
        let _guard = self.lock_entry(key, LockOptions::default())?;
        let retries = atomic_write(&self.entry_path(key), &doc.to_compact())?;
        self.note_retries(retries, sink);
        self.writes.fetch_add(1, Ordering::Relaxed);
        sink.add(Counter::StoreWrites, 1);
        Ok(())
    }

    /// Corruption sweep: validate every object in the store — parseable
    /// JSON, current schema, key matching the file stem, checksum
    /// matching the payload — and report `(valid, corrupt)` counts
    /// without evicting anything. A store that survived a crash, kill
    /// or drain must sweep with zero corrupt entries (atomic renames
    /// mean an entry either fully exists or does not); the serve/chaos
    /// suites and the CI serve gate assert exactly that.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] only when the objects directory
    /// itself cannot be listed; unreadable *entries* count as corrupt.
    pub fn verify_all(&self) -> Result<(usize, usize), StoreError> {
        let dir = self.objects_dir();
        let entries = fs::read_dir(&dir).map_err(|e| io_err(&dir, e))?;
        let (mut valid, mut corrupt) = (0usize, 0usize);
        for entry in entries.flatten() {
            let path = entry.path();
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default()
                .to_string();
            let ok = fs::read_to_string(&path)
                .ok()
                .and_then(|text| json::parse(&text).ok())
                .is_some_and(|doc| {
                    doc.get("schema").and_then(JsonValue::as_u64) == Some(STORE_SCHEMA)
                        && doc.get("key").and_then(JsonValue::as_str) == Some(stem.as_str())
                        && matches!(
                            (doc.get("payload"), doc.get("check").and_then(JsonValue::as_str)),
                            (Some(p), Some(c)) if c == payload_check(p)
                        )
                });
            if ok {
                valid += 1;
            } else {
                corrupt += 1;
            }
        }
        Ok((valid, corrupt))
    }

    /// Cache hits since this handle was opened.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since this handle was opened.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entry writes since this handle was opened.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Evictions (corrupt/stale entries removed) since this handle was
    /// opened.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Transient write failures retried away since this handle was
    /// opened (each retry that eventually succeeded counts once).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    pub(crate) fn note_retries(&self, retries: u64, sink: &dyn MetricsSink) {
        if retries > 0 {
            self.retries.fetch_add(retries, Ordering::Relaxed);
            sink.add(Counter::StoreRetries, retries);
        }
    }

    /// One-line human summary of cache traffic, e.g.
    /// `5 hits, 0 misses, 0 writes, 0 evictions`.
    #[must_use]
    pub fn traffic_summary(&self) -> String {
        format!(
            "{} hits, {} misses, {} writes, {} evictions",
            self.hits(),
            self.misses(),
            self.writes(),
            self.evictions()
        )
    }

    pub(crate) fn note_eviction(&self, sink: &dyn MetricsSink) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
        sink.add(Counter::StoreEvictions, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsoc_metrics::{NullSink, RecordingSink};

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("modsoc_store_test_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key_of(data: &[u8]) -> StoreKey {
        StoreKey(sha256::digest(data))
    }

    fn sample_payload() -> JsonValue {
        json::parse(r#"{"patterns":["01X","1X0"],"coverage":0.875}"#).unwrap()
    }

    #[test]
    fn round_trip_hit() {
        let root = temp_root("round_trip");
        let store = ResultStore::open(&root).unwrap();
        let key = key_of(b"unit-1");
        let sink = RecordingSink::new();
        assert!(store.get(&key, &sink).is_none());
        store.put(&key, &sample_payload(), &sink).unwrap();
        assert_eq!(store.get(&key, &sink), Some(sample_payload()));
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        assert_eq!(store.writes(), 1);
        assert_eq!(store.evictions(), 0);
        let snap = sink.snapshot();
        assert_eq!(snap.counter(Counter::StoreHits), 1);
        assert_eq!(snap.counter(Counter::StoreMisses), 1);
        assert_eq!(snap.counter(Counter::StoreWrites), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_entry_is_evicted_not_fatal() {
        let root = temp_root("truncated");
        let store = ResultStore::open(&root).unwrap();
        let key = key_of(b"unit-2");
        store.put(&key, &sample_payload(), &NullSink).unwrap();
        let path = store.entry_path(&key);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(store.get(&key, &NullSink).is_none());
        assert_eq!(store.evictions(), 1);
        assert!(!path.exists(), "corrupt entry must be removed");
        // The slot is reusable after eviction.
        store.put(&key, &sample_payload(), &NullSink).unwrap();
        assert!(store.get(&key, &NullSink).is_some());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn byte_flip_in_payload_is_detected() {
        let root = temp_root("byteflip");
        let store = ResultStore::open(&root).unwrap();
        let key = key_of(b"unit-3");
        store.put(&key, &sample_payload(), &NullSink).unwrap();
        let path = store.entry_path(&key);
        // Flip a digit inside the payload; the envelope stays
        // well-formed JSON but the checksum no longer matches.
        let text = fs::read_to_string(&path).unwrap();
        let flipped = text.replace("0.875", "0.975");
        assert_ne!(text, flipped, "test must actually change the payload");
        fs::write(&path, flipped).unwrap();
        assert!(store.get(&key, &NullSink).is_none());
        assert_eq!(store.evictions(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn wrong_key_in_envelope_is_rejected() {
        let root = temp_root("wrongkey");
        let store = ResultStore::open(&root).unwrap();
        let a = key_of(b"a");
        let b = key_of(b"b");
        store.put(&a, &sample_payload(), &NullSink).unwrap();
        // Copy a's entry into b's slot: self-consistent, but addressed
        // wrong — must be rejected.
        fs::copy(store.entry_path(&a), store.entry_path(&b)).unwrap();
        assert!(store.get(&b, &NullSink).is_none());
        assert_eq!(store.evictions(), 1);
        assert!(store.get(&a, &NullSink).is_some(), "a is untouched");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn manifest_mismatch_resets_the_store() {
        let root = temp_root("manifest");
        let store = ResultStore::open(&root).unwrap();
        let key = key_of(b"unit-4");
        store.put(&key, &sample_payload(), &NullSink).unwrap();
        drop(store);
        fs::write(
            root.join("manifest.json"),
            "{\"format\":\"modsoc-store\",\"schema\":999}",
        )
        .unwrap();
        let store = ResultStore::open(&root).unwrap();
        assert_eq!(store.evictions(), 1, "old entry evicted on reset");
        assert!(store.get(&key, &NullSink).is_none());
        // Manifest is rewritten to the current schema.
        let text = fs::read_to_string(root.join("manifest.json")).unwrap();
        assert!(text.contains("\"schema\":1"), "{text}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn reopen_preserves_entries() {
        let root = temp_root("reopen");
        let key = key_of(b"unit-5");
        {
            let store = ResultStore::open(&root).unwrap();
            store.put(&key, &sample_payload(), &NullSink).unwrap();
        }
        let store = ResultStore::open(&root).unwrap();
        assert_eq!(store.get(&key, &NullSink), Some(sample_payload()));
        assert_eq!(store.evictions(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn transient_write_failures_are_retried() {
        let root = temp_root("retry");
        fs::create_dir_all(&root).unwrap();
        let path = root.join("entry.json");
        let mut injected = 0u32;
        let retries = atomic_write_with_faults(&path, "{\"ok\":true}", &mut |attempt| {
            if attempt < 2 {
                injected += 1;
                Some(io::Error::other("transient rename failure"))
            } else {
                None
            }
        })
        .unwrap();
        assert_eq!(retries, 2);
        assert_eq!(injected, 2);
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"ok\":true}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn persistent_write_failure_is_final_and_leaves_no_tmp() {
        let root = temp_root("retry_exhaust");
        fs::create_dir_all(&root).unwrap();
        let path = root.join("entry.json");
        let err = atomic_write_with_faults(&path, "x", &mut |_| {
            Some(io::Error::other("permanent failure"))
        })
        .unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
        assert!(!path.exists());
        let leftovers: Vec<_> = fs::read_dir(&root)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(leftovers.is_empty(), "tmp files leaked: {leftovers:?}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn put_counts_retries_through_the_sink() {
        let root = temp_root("retry_sink");
        let store = ResultStore::open(&root).unwrap();
        let sink = RecordingSink::new();
        store
            .put(&key_of(b"clean"), &sample_payload(), &sink)
            .unwrap();
        assert_eq!(store.retries(), 0, "clean writes retry nothing");
        assert_eq!(sink.snapshot().counter(Counter::StoreRetries), 0);
        store.note_retries(3, &sink);
        assert_eq!(store.retries(), 3);
        assert_eq!(sink.snapshot().counter(Counter::StoreRetries), 3);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn concurrent_puts_to_one_key_serialize_cleanly() {
        let root = temp_root("put_race");
        let store = ResultStore::open(&root).unwrap();
        let key = key_of(b"contended");
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10 {
                        store.put(&key, &sample_payload(), &NullSink).unwrap();
                    }
                });
            }
        });
        assert_eq!(store.get(&key, &NullSink), Some(sample_payload()));
        assert_eq!(store.evictions(), 0);
        // The lock must be released afterwards: a fresh put succeeds fast.
        store.put(&key, &sample_payload(), &NullSink).unwrap();
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn key_display_is_hex() {
        let key = key_of(b"abc");
        assert_eq!(
            key.to_string(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(format!("{key:?}"), format!("StoreKey({key})"));
    }
}
