//! Content-addressed on-disk result store for `modsoc`.
//!
//! The DATE 2008 experiments re-run the same per-core ATPG jobs over and
//! over — every `modsoc experiment soc2` invocation regenerates the same
//! four cores from the same seeds and solves them from scratch. This
//! crate provides the bottom layer that makes those runs resumable and
//! cheap to repeat:
//!
//! * [`ResultStore`] — a directory of immutable JSON entries keyed by a
//!   SHA-256 content address ([`StoreKey`], computed by callers from a
//!   canonical serialization of the work unit). Writes are atomic
//!   (tmp file + rename); reads validate a payload checksum so a
//!   truncated or bit-flipped entry is *evicted and recomputed*, never
//!   trusted and never a crash.
//! * [`Journal`] — an append-style completion log used by the campaign
//!   runner: each finished unit is recorded with its key and a summary,
//!   and a re-invocation skips units whose `(unit, key)` pair is already
//!   journaled.
//! * [`sha256`] — the hand-rolled FIPS 180-4 digest both of the above
//!   are built on (the workspace vendors no crypto crate).
//! * [`backend`] — the transport seam: [`ResultStore`] owns envelope
//!   validation and accounting while a [`StoreBackend`] moves raw
//!   documents. [`LocalBackend`] is the original directory layout
//!   (byte-compatible with pre-trait stores); `modsoc_core::remote`
//!   adds an HTTP backend speaking to a `modsoc serve --store` daemon,
//!   plus the claim/lease primitive distributed campaigns partition
//!   work with.
//!
//! The store is size-bounded only on demand: [`ResultStore::gc`] is an
//! oldest-atime-first eviction pass (`modsoc store gc --max-bytes`).
//! Concurrent writers are safe at three levels: the atomic rename makes
//! individual entries torn-proof, entry and journal writes additionally
//! take a cross-process advisory [`lock::StoreLock`] (lock-file +
//! jittered backoff, see [`lock`]) so a `modsoc serve` daemon and a
//! sidecar campaign can share one store, and transient `create`/`rename`
//! failures are retried with bounded backoff rather than surfacing as
//! spurious errors.
//!
//! Cache traffic is observable through [`modsoc_metrics`]: every
//! [`ResultStore`] operation bumps a process-local counter *and* reports
//! through a [`MetricsSink`] (`store_hits`, `store_misses`,
//! `store_writes`, `store_evictions`, `store_retries`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod journal;
pub mod lock;
pub mod sha256;

pub use backend::{
    ClaimAction, ClaimOutcome, ClaimRequest, EntryMeta, LocalBackend, RawDoc, StoreBackend,
};
pub use journal::{Journal, JournalEntry};
pub use lock::{LockOptions, StoreLock};

use modsoc_metrics::json::{self, JsonValue};
use modsoc_metrics::{Counter, MetricsSink};
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// On-disk schema version. Bumping it invalidates every existing entry:
/// `open` evicts objects whose manifest does not match, and `get`
/// rejects entries recorded under a different schema.
pub const STORE_SCHEMA: u64 = 1;

/// Identifying tag written into the manifest so a store directory is
/// recognizable (and a random directory is not mistaken for one).
pub const STORE_FORMAT: &str = "modsoc-store";

/// A 32-byte content address (SHA-256 digest) naming one store entry.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreKey(pub [u8; 32]);

impl StoreKey {
    /// Lowercase hex form — also the entry's file stem on disk.
    #[must_use]
    pub fn hex(&self) -> String {
        sha256::hex(&self.0)
    }

    /// Parse the 64-character lowercase hex form back into a key.
    /// Returns `None` for anything else (wrong length, uppercase,
    /// non-hex) — the strictness doubles as path-safety for keys that
    /// arrive over the wire.
    #[must_use]
    pub fn from_hex(hex: &str) -> Option<StoreKey> {
        if hex.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, byte) in out.iter_mut().enumerate() {
            let nib = |c: u8| match c {
                b'0'..=b'9' => Some(c - b'0'),
                b'a'..=b'f' => Some(c - b'a' + 10),
                _ => None,
            };
            let hi = nib(hex.as_bytes()[2 * i])?;
            let lo = nib(hex.as_bytes()[2 * i + 1])?;
            *byte = (hi << 4) | lo;
        }
        Some(StoreKey(out))
    }
}

impl fmt::Debug for StoreKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StoreKey({})", self.hex())
    }
}

impl fmt::Display for StoreKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Errors surfaced by store operations that the caller must handle
/// (directory creation, manifest writes, entry writes). Read-side
/// corruption is *not* an error — corrupt entries are evicted and the
/// read reports a miss.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// An I/O operation on the store directory failed.
    Io {
        /// Path the operation touched.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// An advisory lock stayed held by a live owner past the acquire
    /// deadline.
    Contended {
        /// The lock file that could not be acquired.
        path: PathBuf,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store I/O error at {}: {source}", path.display())
            }
            StoreError::Contended { path } => {
                write!(f, "store lock at {} is contended", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Contended { .. } => None,
        }
    }
}

pub(crate) fn io_err(path: &Path, source: io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Attempts (initial try + retries) before a write failure is final.
const WRITE_ATTEMPTS: u32 = 4;

/// Write `contents` to `path` atomically and durably: write a sibling
/// tmp file in the same directory, flush it, rename over the
/// destination, then fsync the parent directory so the rename itself
/// survives a power cut. Readers either see the old entry or the
/// complete new one, never a torn write.
///
/// Transient `create`/`rename` failures (e.g. an overloaded filesystem
/// or an antivirus-style scanner briefly pinning the tmp file) are
/// retried with jittered backoff up to [`WRITE_ATTEMPTS`]; the returned
/// count is how many retries were needed (0 on a clean first attempt),
/// reported upstream as `store_retries`.
pub(crate) fn atomic_write(path: &Path, contents: &str) -> Result<u64, StoreError> {
    atomic_write_with_faults(path, contents, &mut |_| None)
}

/// [`atomic_write`] with an injectable fault seam: `inject(attempt)`
/// may return an error to substitute for that attempt's rename, letting
/// tests exercise the retry path without a misbehaving filesystem.
pub(crate) fn atomic_write_with_faults(
    path: &Path,
    contents: &str,
    inject: &mut dyn FnMut(u32) -> Option<io::Error>,
) -> Result<u64, StoreError> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let stem = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "entry".to_string());
    let tmp = dir.join(format!(".tmp-{}-{stem}", std::process::id()));
    let mut rng = 0u64;
    let mut last_err = None;
    for attempt in 0..WRITE_ATTEMPTS {
        if attempt > 0 {
            std::thread::sleep(lock::backoff_delay(attempt - 1, &mut rng));
        }
        match write_once(&tmp, path, contents, inject(attempt)) {
            Ok(()) => {
                // The rename is atomic but only durable once the parent
                // directory's own entry list reaches the disk; without
                // this fsync a power loss can resurrect the replaced
                // file (or un-create this one). Best-effort: not every
                // platform lets a directory be opened for syncing.
                if let Ok(d) = fs::File::open(dir) {
                    let _ = d.sync_all();
                }
                return Ok(u64::from(attempt));
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                last_err = Some(e);
            }
        }
    }
    Err(io_err(
        path,
        last_err.unwrap_or_else(|| io::Error::other("write failed")),
    ))
}

fn write_once(
    tmp: &Path,
    path: &Path,
    contents: &str,
    injected: Option<io::Error>,
) -> Result<(), io::Error> {
    let mut f = fs::File::create(tmp)?;
    f.write_all(contents.as_bytes())?;
    f.sync_all()?;
    drop(f);
    if let Some(e) = injected {
        return Err(e);
    }
    fs::rename(tmp, path)
}

/// Checksum guarding a JSON payload: the SHA-256 hex digest of its
/// compact serialization. Stored alongside the payload so byte flips
/// anywhere in the entry are detected on read.
#[must_use]
pub fn payload_check(payload: &JsonValue) -> String {
    sha256::hex(&sha256::digest(payload.to_compact().as_bytes()))
}

/// Validate one raw entry document against the envelope contract:
/// parseable JSON, current schema, a `key` field equal to `key_hex`,
/// and a `check` field equal to the payload's checksum. Returns the
/// payload on success and the taxonomy's eviction reason on failure.
///
/// This is *the* corruption taxonomy — [`ResultStore::get`] runs it on
/// every read regardless of backend, the serve daemon runs it before
/// ingesting a `/store/put`, and `verify_all` runs it per entry.
///
/// # Errors
///
/// The eviction reason: `"malformed JSON"`, `"schema mismatch"`,
/// `"key mismatch"`, `"missing payload"` or `"checksum mismatch"`.
pub fn validate_entry_doc(key_hex: &str, text: &str) -> Result<JsonValue, String> {
    let Ok(doc) = json::parse(text) else {
        return Err("malformed JSON".to_string());
    };
    if doc.get("schema").and_then(JsonValue::as_u64) != Some(STORE_SCHEMA) {
        return Err("schema mismatch".to_string());
    }
    if doc.get("key").and_then(JsonValue::as_str) != Some(key_hex) {
        return Err("key mismatch".to_string());
    }
    let Some(payload) = doc.get("payload") else {
        return Err("missing payload".to_string());
    };
    if doc.get("check").and_then(JsonValue::as_str) != Some(payload_check(payload).as_str()) {
        return Err("checksum mismatch".to_string());
    }
    Ok(payload.clone())
}

/// Why [`ResultStore::ingest`] or [`ResultStore::merge_journal_raw`]
/// refused a wire document.
#[derive(Debug)]
pub enum IngestError {
    /// The document failed validation; the payload is the reason
    /// (reported to the sender as a 422).
    Invalid(String),
    /// The document was valid but could not be stored.
    Store(StoreError),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Invalid(why) => write!(f, "invalid document: {why}"),
            IngestError::Store(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for IngestError {}

/// Outcome of a [`ResultStore::gc`] sweep.
#[derive(Debug, Clone)]
pub struct GcReport {
    /// Entries present before the sweep.
    pub scanned: usize,
    /// Content addresses evicted, oldest-first.
    pub evicted: Vec<String>,
    /// Bytes reclaimed.
    pub evicted_bytes: u64,
    /// Entries kept.
    pub kept: usize,
    /// Bytes kept.
    pub kept_bytes: u64,
}

/// A content-addressed result store over a pluggable [`StoreBackend`].
///
/// The wrapper owns the store's *semantics* — envelope construction,
/// the read-side corruption taxonomy, hit/miss/write/eviction
/// accounting — and delegates raw document I/O to the backend:
/// [`LocalBackend`] (the original directory layout, the default from
/// [`ResultStore::open`]) or any other [`StoreBackend`] via
/// [`ResultStore::with_backend`].
#[derive(Debug)]
pub struct ResultStore {
    backend: Arc<dyn StoreBackend>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    evictions: AtomicU64,
    retries: AtomicU64,
}

impl ResultStore {
    /// Open (creating if necessary) the directory-backed store rooted
    /// at `dir`.
    ///
    /// A missing directory is created and stamped with a manifest. An
    /// existing directory with a corrupt or schema-mismatched manifest
    /// is *reset*: every object and journal is evicted (counted) and a
    /// fresh manifest is written — stale-format entries must never be
    /// decoded as current-format ones.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the directory tree or manifest
    /// cannot be created.
    pub fn open(dir: &Path) -> Result<ResultStore, StoreError> {
        let (backend, reset_evictions) = LocalBackend::open(dir)?;
        let store = ResultStore::with_backend(Arc::new(backend));
        store
            .evictions
            .fetch_add(reset_evictions, Ordering::Relaxed);
        Ok(store)
    }

    /// Wrap an already-constructed backend (e.g. an HTTP client
    /// speaking to a `modsoc serve --store` daemon). The full read-side
    /// corruption taxonomy applies regardless of transport.
    #[must_use]
    pub fn with_backend(backend: Arc<dyn StoreBackend>) -> ResultStore {
        ResultStore {
            backend,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    /// The transport under this store.
    #[must_use]
    pub fn backend(&self) -> &Arc<dyn StoreBackend> {
        &self.backend
    }

    /// Human-readable locator of the backing storage (directory path or
    /// base URL), for logs.
    #[must_use]
    pub fn describe(&self) -> String {
        self.backend.describe()
    }

    /// Remove the entry for `key` because the caller could not use it —
    /// e.g. the envelope checksum held but the payload did not decode
    /// into the expected result shape. Logged and counted as an
    /// eviction; a no-op when no entry exists.
    pub fn evict(&self, key: &StoreKey, why: &str, sink: &dyn MetricsSink) {
        if self.backend.remove_entry(&key.hex(), why) {
            self.note_eviction(sink);
        }
    }

    /// Fetch the payload stored under `key`, or `None` on a miss.
    ///
    /// Every failure mode — missing file, unreadable file, malformed
    /// JSON, schema mismatch, key mismatch, checksum mismatch — is a
    /// miss; validation failures additionally evict the entry so the
    /// next write replaces it. This is the corruption-tolerance
    /// contract: a damaged store degrades to recomputation, it does not
    /// crash or serve garbage. The taxonomy runs *here*, on the
    /// consuming side, whatever the backend — a remote store serving
    /// damaged bytes is observed as a client-side eviction.
    pub fn get(&self, key: &StoreKey, sink: &dyn MetricsSink) -> Option<JsonValue> {
        let hex = key.hex();
        if self.backend.is_remote() {
            sink.add(Counter::StoreRemoteGets, 1);
        }
        let miss = || {
            self.misses.fetch_add(1, Ordering::Relaxed);
            sink.add(Counter::StoreMisses, 1);
        };
        let text = match self.backend.load_entry(&hex) {
            RawDoc::Missing => {
                miss();
                return None;
            }
            RawDoc::Unreadable(why) => {
                if self.backend.remove_entry(&hex, &why) {
                    self.note_eviction(sink);
                }
                miss();
                return None;
            }
            RawDoc::Present(text) => text,
        };
        match validate_entry_doc(&hex, &text) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                sink.add(Counter::StoreHits, 1);
                Some(payload)
            }
            Err(why) => {
                if self.backend.remove_entry(&hex, &why) {
                    self.note_eviction(sink);
                }
                miss();
                None
            }
        }
    }

    /// Store `payload` under `key` (atomically, replacing any previous
    /// entry for the key). The write holds the key's cross-process
    /// advisory lock, so a daemon and a sidecar campaign sharing this
    /// store never interleave writes to one entry.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the entry cannot be written and
    /// [`StoreError::Contended`] when another live process holds the
    /// entry lock past the deadline; callers treat both as non-fatal
    /// (the result was computed, only the cache write failed).
    pub fn put(
        &self,
        key: &StoreKey,
        payload: &JsonValue,
        sink: &dyn MetricsSink,
    ) -> Result<(), StoreError> {
        let doc = JsonValue::Object(vec![
            ("schema".to_string(), JsonValue::Number(STORE_SCHEMA as f64)),
            ("key".to_string(), JsonValue::String(key.hex())),
            (
                "check".to_string(),
                JsonValue::String(payload_check(payload)),
            ),
            ("payload".to_string(), payload.clone()),
        ]);
        if self.backend.is_remote() {
            sink.add(Counter::StoreRemotePuts, 1);
        }
        let retries = self.backend.store_entry(&key.hex(), &doc.to_compact())?;
        self.note_retries(retries, sink);
        self.writes.fetch_add(1, Ordering::Relaxed);
        sink.add(Counter::StoreWrites, 1);
        Ok(())
    }

    /// Read the raw entry document under `key_hex` without validating
    /// or counting — the serve daemon's `/store/get` uses this so
    /// validation happens exactly once, on the consuming client.
    #[must_use]
    pub fn load_entry_raw(&self, key_hex: &str) -> RawDoc {
        self.backend.load_entry(key_hex)
    }

    /// Store an already-enveloped wire document under `key_hex` after
    /// validating it — the serve daemon's `/store/put`. The received
    /// bytes are stored verbatim (no re-serialization), so the entry a
    /// client wrote through the daemon is byte-identical to one it
    /// would have written to a local store.
    ///
    /// # Errors
    ///
    /// [`IngestError::Invalid`] when `key_hex` is not a well-formed key
    /// or the document fails the envelope contract;
    /// [`IngestError::Store`] when the write itself fails.
    pub fn ingest(
        &self,
        key_hex: &str,
        doc: &str,
        sink: &dyn MetricsSink,
    ) -> Result<(), IngestError> {
        if StoreKey::from_hex(key_hex).is_none() {
            return Err(IngestError::Invalid("malformed key".to_string()));
        }
        validate_entry_doc(key_hex, doc).map_err(IngestError::Invalid)?;
        let retries = self
            .backend
            .store_entry(key_hex, doc)
            .map_err(IngestError::Store)?;
        self.note_retries(retries, sink);
        self.writes.fetch_add(1, Ordering::Relaxed);
        sink.add(Counter::StoreWrites, 1);
        Ok(())
    }

    /// Corruption sweep: validate every object in the store — parseable
    /// JSON, current schema, key matching the file stem, checksum
    /// matching the payload — and report `(valid, corrupt)` counts
    /// without evicting anything. A store that survived a crash, kill
    /// or drain must sweep with zero corrupt entries (atomic renames
    /// mean an entry either fully exists or does not); the serve/chaos
    /// suites and the CI serve gate assert exactly that.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] only when the store cannot be
    /// enumerated (remote backends never can — sweeps run where the
    /// bytes live); unreadable *entries* count as corrupt.
    pub fn verify_all(&self) -> Result<(usize, usize), StoreError> {
        self.backend.verify_all()
    }

    /// Size-bounded eviction pass: while the store's total entry size
    /// exceeds `max_bytes`, evict the least-recently-accessed entry
    /// (oldest atime first, mtime where atime is not tracked, key hex
    /// as the deterministic tiebreak). Journals are never collected —
    /// only objects, which are recomputable by construction. Each
    /// eviction is logged and counted like any other.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the store cannot be enumerated
    /// (remote backends included — GC runs where the bytes live, e.g.
    /// `modsoc store gc` on the serve daemon's directory).
    pub fn gc(&self, max_bytes: u64, sink: &dyn MetricsSink) -> Result<GcReport, StoreError> {
        let mut metas = self.backend.entry_meta()?;
        metas.sort_by(|a, b| {
            a.last_access
                .cmp(&b.last_access)
                .then_with(|| a.key_hex.cmp(&b.key_hex))
        });
        let scanned = metas.len();
        let mut total: u64 = metas.iter().map(|m| m.bytes).sum();
        let mut evicted = Vec::new();
        let mut evicted_bytes = 0u64;
        for meta in &metas {
            if total <= max_bytes {
                break;
            }
            if self.backend.remove_entry(&meta.key_hex, "gc: size bound") {
                self.note_eviction(sink);
                total -= meta.bytes;
                evicted_bytes += meta.bytes;
                evicted.push(meta.key_hex.clone());
            }
        }
        Ok(GcReport {
            scanned,
            kept: scanned - evicted.len(),
            kept_bytes: total,
            evicted,
            evicted_bytes,
        })
    }

    /// Acquire the `(journal, unit)` claim for `owner` with the given
    /// lease — the compare-and-swap distributed campaigns partition
    /// work with. A claim whose lease has expired (holder killed) is
    /// broken and re-offered; re-acquiring one's own live claim renews
    /// it.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on transport failure or unresolved CAS races.
    pub fn claim_unit(
        &self,
        journal: &str,
        unit: &str,
        key: &str,
        owner: &str,
        lease: Duration,
    ) -> Result<ClaimOutcome, StoreError> {
        self.backend.claim(&ClaimRequest {
            journal,
            unit,
            key,
            owner,
            lease,
            action: ClaimAction::Acquire,
        })
    }

    /// Refresh `owner`'s live claim on `(journal, unit)`, extending its
    /// lease. Returns [`ClaimOutcome::NotOwner`] when the claim expired
    /// and was taken by someone else.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on transport failure.
    pub fn renew_claim(
        &self,
        journal: &str,
        unit: &str,
        owner: &str,
    ) -> Result<ClaimOutcome, StoreError> {
        self.backend.claim(&ClaimRequest {
            journal,
            unit,
            key: "",
            owner,
            lease: Duration::ZERO,
            action: ClaimAction::Renew,
        })
    }

    /// Drop `owner`'s claim on `(journal, unit)` so the unit is
    /// immediately re-offerable. Idempotent: releasing an absent claim
    /// is [`ClaimOutcome::Released`].
    ///
    /// # Errors
    ///
    /// [`StoreError`] on transport failure.
    pub fn release_claim(
        &self,
        journal: &str,
        unit: &str,
        owner: &str,
    ) -> Result<ClaimOutcome, StoreError> {
        self.backend.claim(&ClaimRequest {
            journal,
            unit,
            key: "",
            owner,
            lease: Duration::ZERO,
            action: ClaimAction::Release,
        })
    }

    /// Cache hits since this handle was opened.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since this handle was opened.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entry writes since this handle was opened.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Evictions (corrupt/stale entries removed) since this handle was
    /// opened.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Transient write failures retried away since this handle was
    /// opened (each retry that eventually succeeded counts once).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    pub(crate) fn note_retries(&self, retries: u64, sink: &dyn MetricsSink) {
        if retries > 0 {
            self.retries.fetch_add(retries, Ordering::Relaxed);
            sink.add(Counter::StoreRetries, retries);
        }
    }

    /// One-line human summary of cache traffic, e.g.
    /// `5 hits, 0 misses, 0 writes, 0 evictions`.
    #[must_use]
    pub fn traffic_summary(&self) -> String {
        format!(
            "{} hits, {} misses, {} writes, {} evictions",
            self.hits(),
            self.misses(),
            self.writes(),
            self.evictions()
        )
    }

    pub(crate) fn note_eviction(&self, sink: &dyn MetricsSink) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
        sink.add(Counter::StoreEvictions, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modsoc_metrics::{NullSink, RecordingSink};

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("modsoc_store_test_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key_of(data: &[u8]) -> StoreKey {
        StoreKey(sha256::digest(data))
    }

    fn entry_path(root: &Path, key: &StoreKey) -> PathBuf {
        root.join("objects").join(format!("{}.json", key.hex()))
    }

    fn sample_payload() -> JsonValue {
        json::parse(r#"{"patterns":["01X","1X0"],"coverage":0.875}"#).unwrap()
    }

    #[test]
    fn round_trip_hit() {
        let root = temp_root("round_trip");
        let store = ResultStore::open(&root).unwrap();
        let key = key_of(b"unit-1");
        let sink = RecordingSink::new();
        assert!(store.get(&key, &sink).is_none());
        store.put(&key, &sample_payload(), &sink).unwrap();
        assert_eq!(store.get(&key, &sink), Some(sample_payload()));
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        assert_eq!(store.writes(), 1);
        assert_eq!(store.evictions(), 0);
        let snap = sink.snapshot();
        assert_eq!(snap.counter(Counter::StoreHits), 1);
        assert_eq!(snap.counter(Counter::StoreMisses), 1);
        assert_eq!(snap.counter(Counter::StoreWrites), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_entry_is_evicted_not_fatal() {
        let root = temp_root("truncated");
        let store = ResultStore::open(&root).unwrap();
        let key = key_of(b"unit-2");
        store.put(&key, &sample_payload(), &NullSink).unwrap();
        let path = entry_path(&root, &key);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(store.get(&key, &NullSink).is_none());
        assert_eq!(store.evictions(), 1);
        assert!(!path.exists(), "corrupt entry must be removed");
        // The slot is reusable after eviction.
        store.put(&key, &sample_payload(), &NullSink).unwrap();
        assert!(store.get(&key, &NullSink).is_some());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn byte_flip_in_payload_is_detected() {
        let root = temp_root("byteflip");
        let store = ResultStore::open(&root).unwrap();
        let key = key_of(b"unit-3");
        store.put(&key, &sample_payload(), &NullSink).unwrap();
        let path = entry_path(&root, &key);
        // Flip a digit inside the payload; the envelope stays
        // well-formed JSON but the checksum no longer matches.
        let text = fs::read_to_string(&path).unwrap();
        let flipped = text.replace("0.875", "0.975");
        assert_ne!(text, flipped, "test must actually change the payload");
        fs::write(&path, flipped).unwrap();
        assert!(store.get(&key, &NullSink).is_none());
        assert_eq!(store.evictions(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn wrong_key_in_envelope_is_rejected() {
        let root = temp_root("wrongkey");
        let store = ResultStore::open(&root).unwrap();
        let a = key_of(b"a");
        let b = key_of(b"b");
        store.put(&a, &sample_payload(), &NullSink).unwrap();
        // Copy a's entry into b's slot: self-consistent, but addressed
        // wrong — must be rejected.
        fs::copy(entry_path(&root, &a), entry_path(&root, &b)).unwrap();
        assert!(store.get(&b, &NullSink).is_none());
        assert_eq!(store.evictions(), 1);
        assert!(store.get(&a, &NullSink).is_some(), "a is untouched");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn manifest_mismatch_resets_the_store() {
        let root = temp_root("manifest");
        let store = ResultStore::open(&root).unwrap();
        let key = key_of(b"unit-4");
        store.put(&key, &sample_payload(), &NullSink).unwrap();
        drop(store);
        fs::write(
            root.join("manifest.json"),
            "{\"format\":\"modsoc-store\",\"schema\":999}",
        )
        .unwrap();
        let store = ResultStore::open(&root).unwrap();
        assert_eq!(store.evictions(), 1, "old entry evicted on reset");
        assert!(store.get(&key, &NullSink).is_none());
        // Manifest is rewritten to the current schema.
        let text = fs::read_to_string(root.join("manifest.json")).unwrap();
        assert!(text.contains("\"schema\":1"), "{text}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn reopen_preserves_entries() {
        let root = temp_root("reopen");
        let key = key_of(b"unit-5");
        {
            let store = ResultStore::open(&root).unwrap();
            store.put(&key, &sample_payload(), &NullSink).unwrap();
        }
        let store = ResultStore::open(&root).unwrap();
        assert_eq!(store.get(&key, &NullSink), Some(sample_payload()));
        assert_eq!(store.evictions(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn transient_write_failures_are_retried() {
        let root = temp_root("retry");
        fs::create_dir_all(&root).unwrap();
        let path = root.join("entry.json");
        let mut injected = 0u32;
        let retries = atomic_write_with_faults(&path, "{\"ok\":true}", &mut |attempt| {
            if attempt < 2 {
                injected += 1;
                Some(io::Error::other("transient rename failure"))
            } else {
                None
            }
        })
        .unwrap();
        assert_eq!(retries, 2);
        assert_eq!(injected, 2);
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"ok\":true}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn persistent_write_failure_is_final_and_leaves_no_tmp() {
        let root = temp_root("retry_exhaust");
        fs::create_dir_all(&root).unwrap();
        let path = root.join("entry.json");
        let err = atomic_write_with_faults(&path, "x", &mut |_| {
            Some(io::Error::other("permanent failure"))
        })
        .unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
        assert!(!path.exists());
        let leftovers: Vec<_> = fs::read_dir(&root)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(leftovers.is_empty(), "tmp files leaked: {leftovers:?}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn put_counts_retries_through_the_sink() {
        let root = temp_root("retry_sink");
        let store = ResultStore::open(&root).unwrap();
        let sink = RecordingSink::new();
        store
            .put(&key_of(b"clean"), &sample_payload(), &sink)
            .unwrap();
        assert_eq!(store.retries(), 0, "clean writes retry nothing");
        assert_eq!(sink.snapshot().counter(Counter::StoreRetries), 0);
        store.note_retries(3, &sink);
        assert_eq!(store.retries(), 3);
        assert_eq!(sink.snapshot().counter(Counter::StoreRetries), 3);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn concurrent_puts_to_one_key_serialize_cleanly() {
        let root = temp_root("put_race");
        let store = ResultStore::open(&root).unwrap();
        let key = key_of(b"contended");
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10 {
                        store.put(&key, &sample_payload(), &NullSink).unwrap();
                    }
                });
            }
        });
        assert_eq!(store.get(&key, &NullSink), Some(sample_payload()));
        assert_eq!(store.evictions(), 0);
        // The lock must be released afterwards: a fresh put succeeds fast.
        store.put(&key, &sample_payload(), &NullSink).unwrap();
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn key_display_is_hex() {
        let key = key_of(b"abc");
        assert_eq!(
            key.to_string(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(format!("{key:?}"), format!("StoreKey({key})"));
    }
}
