//! At-speed transition-delay fault testing (launch-on-capture).
//!
//! Runs the TDF flow on a generated full-scan core and compares its
//! pattern economics against the stuck-at flow on the same design —
//! at-speed patterns are the other big consumer of tester data volume in
//! practice, and they obey the same per-core-count arithmetic the paper
//! analyses.
//!
//! Run with: `cargo run --release --example transition_faults`

use modsoc::atpg::tdf::{enumerate_transition_faults, run_tdf_atpg};
use modsoc::atpg::{Atpg, AtpgOptions};
use modsoc::circuitgen::{generate, CoreProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = CoreProfile::new("core", 10, 6, 16).with_seed(8);
    let circuit = generate(&profile)?;
    let model = circuit.to_test_model()?;
    println!(
        "core: {} gates, {} scan cells; TDF universe: {} faults",
        circuit.gate_count(),
        circuit.dff_count(),
        enumerate_transition_faults(&model.circuit).len()
    );

    let stuck = Atpg::new(AtpgOptions::default()).run(&circuit)?;
    println!(
        "\nstuck-at flow:   {:>4} patterns, {:>6.2}% coverage",
        stuck.pattern_count(),
        stuck.fault_coverage() * 100.0
    );

    let tdf = run_tdf_atpg(&circuit, 400)?;
    println!(
        "transition flow: {:>4} patterns, {:>6.2}% coverage over LOC-testable \
         ({} detected, {} LOC-untestable, {} aborted of {})",
        tdf.patterns.len(),
        tdf.coverage() * 100.0,
        tdf.detected,
        tdf.untestable,
        tdf.aborted,
        tdf.total
    );
    println!(
        "\nTDF patterns usually outnumber stuck-at patterns on the same core —\n\
         so an SOC's at-speed TDV obeys the same modular-vs-monolithic\n\
         arithmetic the paper derives, with even higher stakes."
    );
    Ok(())
}
