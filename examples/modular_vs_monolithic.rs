//! The full live pipeline on a small SOC: generate core netlists, run
//! ATPG per core, flatten, run monolithic ATPG, and compare test data
//! volumes — the Tables 1/2 experiment at example scale.
//!
//! Run with: `cargo run --release --example modular_vs_monolithic`

use modsoc::analysis::experiment::{run_soc_experiment, ExperimentOptions};
use modsoc::analysis::report::render_core_table;
use modsoc::circuitgen::soc::mini_soc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-core SOC with deliberately different core difficulty: coreA
    // is XOR-rich (many patterns), coreB is easy (few patterns). The
    // difference is exactly what modular testing monetizes.
    let netlist = mini_soc(7)?;
    println!(
        "SOC `{}`: {} cores, chip I/O {}/{}, {} scan cells total",
        netlist.name(),
        netlist.cores().len(),
        netlist.chip_input_count(),
        netlist.chip_output_count(),
        netlist.total_scan_cells()
    );
    for core in netlist.cores() {
        println!("  {core}");
    }

    let experiment = run_soc_experiment(&netlist, &ExperimentOptions::paper_tables_1_2())?;
    println!("\nper-core ATPG:");
    for m in &experiment.cores {
        println!(
            "  {}: {} patterns, {:.1}% fault coverage ({} faults collapsed from {})",
            m.name,
            m.patterns,
            m.fault_coverage * 100.0,
            m.stats.collapsed_faults,
            m.stats.universe_faults
        );
    }
    println!(
        "\nmonolithic (flattened, isolation ripped out): {} patterns, {:.1}% coverage",
        experiment.t_mono,
        experiment.mono_coverage * 100.0
    );
    println!(
        "equation 2 (T_mono >= max core T): {} >= {} — strict: {}",
        experiment.t_mono,
        experiment.soc.max_core_patterns(),
        experiment.eq2_strict
    );

    println!(
        "\n{}",
        render_core_table(&experiment.soc, &experiment.analysis)
    );
    println!(
        "verdict: modular testing needs {:.2}x less test data than the monolithic run",
        experiment.analysis.reduction_ratio()
    );
    Ok(())
}
