//! Survey the ten ITC'02 benchmark SOCs (the paper's Table 4) and show
//! the correlation between pattern-count variation and the benefit of
//! modular testing.
//!
//! Run with: `cargo run --example itc02_survey`

use modsoc::analysis::reconstruct::reconstruct_table4;
use modsoc::analysis::report::render_survey;
use modsoc::analysis::{SocTdvAnalysis, TdvOptions};
use modsoc::soc::itc02::{p34392, table4};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = TdvOptions::tables_3_4();
    let mut analyses = Vec::new();
    for row in table4() {
        // p34392's per-core data is published (Table 3); the other nine
        // are reconstructed from the paper's aggregates.
        let soc = if row.name == "p34392" {
            p34392()
        } else {
            reconstruct_table4(row)?
        };
        analyses.push(SocTdvAnalysis::compute(&soc, &opts)?);
    }
    println!("{}", render_survey(&analyses));

    // The paper's two extremes, explained by the data itself:
    let g12710 = &analyses[4];
    println!(
        "g12710: pattern counts barely vary (nstd {:.2}) and terminals outnumber scan cells,\n\
         so the wrapper penalty ({:.1}%) dwarfs the benefit ({:.1}%): modular testing LOSES here.",
        g12710.pattern_stats().normalized_stdev(),
        g12710.penalty_pct(),
        -g12710.benefit_pct(),
    );
    let a586710 = &analyses[9];
    println!(
        "a586710: one small core needs an enormous pattern count (nstd {:.2}), so monolithic\n\
         testing tops every scan cell off to that count: modular testing saves {:.1}%.",
        a586710.pattern_stats().normalized_stdev(),
        -a586710.modular_change_pct(),
    );
    Ok(())
}
