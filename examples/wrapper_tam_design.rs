//! Wrapper/TAM design on the p34392 cores: the infrastructure layer the
//! paper's analysis deliberately abstracts away, made concrete.
//!
//! Shows wrapper chain balancing, the three classic TAM architectures,
//! and how idle (padding) bits — excluded from the paper's useful-bit
//! accounting — depend on the architecture.
//!
//! Run with: `cargo run --example wrapper_tam_design`

use modsoc::soc::itc02;
use modsoc::tam::schedule::{schedule, schedule_rectangles};
use modsoc::tam::wrapper::{design_wrapper, WrapperCore};
use modsoc::tam::{soc_test_time, TamArchitecture};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = itc02::p34392();
    // Wrapper view: split each core's scan cells into 8 internal chains.
    let cores: Vec<WrapperCore> = soc
        .iter()
        .filter(|(_, c)| c.patterns > 0)
        .map(|(_, c)| WrapperCore::from_core_spec(c, 8))
        .collect();

    // Wrapper design for the biggest core at a few widths.
    let big = cores.iter().max_by_key(|c| c.total_cells()).expect("cores");
    println!(
        "wrapper design for `{}` ({} cells):",
        big.name,
        big.total_cells()
    );
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12}",
        "width", "scan-in", "scan-out", "test time", "idle/pat"
    );
    for w in [1, 2, 4, 8, 16] {
        let d = design_wrapper(big, w);
        println!(
            "{w:>6} {:>10} {:>10} {:>12} {:>12}",
            d.max_scan_in(),
            d.max_scan_out(),
            d.test_time_self(),
            d.idle_bits_per_pattern()
        );
    }

    // TAM architectures at width 32.
    println!("\nSOC test time at TAM width 32:");
    for arch in [
        TamArchitecture::Multiplexing,
        TamArchitecture::Daisychain,
        TamArchitecture::Distribution,
    ] {
        let eval = soc_test_time(arch, &cores, 32)?;
        let sched = schedule(arch, &cores, 32)?;
        println!(
            "  {:?}: {} cycles, TAM utilization {:.1}%",
            arch,
            eval.total_time,
            sched.utilization() * 100.0
        );
    }

    // Flexible rectangle scheduling beats the rigid architectures.
    let rect = schedule_rectangles(&cores, 32)?;
    println!(
        "  Rectangles: {} cycles, TAM utilization {:.1}%",
        rect.makespan(),
        rect.utilization() * 100.0
    );
    println!("\nschedule Gantt (width 32):");
    print!("{}", rect.render_gantt(60));

    // Joint TDV + time: the paper analyses data volume; this closes the
    // loop on its intro claim that modularity helps test time too.
    use modsoc::analysis::tdv::TdvOptions;
    use modsoc::analysis::timecost::time_cost;
    println!("\njoint data-volume / test-time view (p34392):");
    println!(
        "{:>6} {:>14} {:>14} {:>7}",
        "width", "modular cyc", "monolith cyc", "ratio"
    );
    for width in [8usize, 16, 32, 64] {
        let tc = time_cost(&soc, &TdvOptions::tables_3_4(), None, width, 8)?;
        println!(
            "{width:>6} {:>14} {:>14} {:>6.2}x",
            tc.modular_time,
            tc.monolithic_time,
            tc.time_reduction_ratio()
        );
    }
    println!("(data volume is TAM-independent — the paper's scoping — but time is not)");
    Ok(())
}
