//! Test data compression on real ATPG cubes: the industrial sequel to
//! the paper's modular TDV reduction.
//!
//! Modular testing cuts test data by not shipping every core the
//! chip-wide pattern count; compression cuts it again by exploiting the
//! don't-care bits inside each remaining pattern. This example runs the
//! workspace ATPG on a generated core *without* filling the X bits, then
//! sweeps an XOR decompressor's channel count and reports the achieved
//! external-data reduction.
//!
//! Run with: `cargo run --release --example compression_demo`

use modsoc::atpg::compress::{evaluate_compression, XorDecompressor};
use modsoc::atpg::{Atpg, AtpgOptions};
use modsoc::circuitgen::{generate, CoreProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = CoreProfile::new("core", 24, 12, 96).with_seed(13);
    let circuit = generate(&profile)?;

    // Deterministic-only keeps the cubes sparse (random-phase patterns
    // are fully specified and would not compress).
    let result = Atpg::new(AtpgOptions::deterministic_only()).run(&circuit)?;
    let width = result.patterns.width();
    let care = result.patterns.care_bits() as f64 / (result.patterns.len() as f64 * width as f64);
    println!(
        "core: {} gates; test set: {} patterns x {} bits, care density {:.1}%",
        circuit.gate_count(),
        result.patterns.len(),
        width,
        care * 100.0
    );
    println!("coverage: {:.2}%\n", result.fault_coverage() * 100.0);

    println!(
        "{:>9} {:>12} {:>9} {:>15} {:>8}",
        "channels", "tester bits", "encoded", "external bits", "factor"
    );
    let cycles = width.div_ceil(8).max(4);
    for channels in [1usize, 2, 4, 8, 16] {
        let d = XorDecompressor::new(width, channels, cycles, 0xEDF);
        let outcome = evaluate_compression(&result.patterns, &d);
        println!(
            "{channels:>9} {:>12} {:>7}/{:<2} {:>15} {:>7.1}x",
            d.tester_bits(),
            outcome.encoded,
            outcome.encoded + outcome.rejected,
            outcome.compressed_stimulus_bits,
            outcome.compression_factor()
        );
    }
    println!(
        "\nuncompressed external stimulus: {} bits",
        result.patterns.stimulus_bits()
    );
    println!("(few channels -> some cubes reject and ship raw; more channels -> everything");
    println!(" encodes but each pattern costs more tester bits: the classic EDT trade)");
    Ok(())
}
