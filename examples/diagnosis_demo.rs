//! Fault diagnosis: from a failing device's syndrome back to the
//! defect location.
//!
//! Generates a core, produces its ATPG pattern set, "manufactures" a
//! defective device by picking a secret stuck-at fault, collects the
//! tester syndrome (which patterns fail on which outputs), and runs the
//! cause-effect diagnosis to recover the fault site.
//!
//! Run with: `cargo run --release --example diagnosis_demo`

use modsoc::atpg::collapse::collapse_faults;
use modsoc::atpg::diagnose::{diagnose, diagnose_with_outputs, rank_of, syndrome_of_fault};
use modsoc::atpg::{Atpg, AtpgOptions};
use modsoc::circuitgen::{generate, CoreProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = CoreProfile::new("dut", 10, 6, 0).with_seed(77);
    let circuit = generate(&profile)?;
    println!(
        "device under test: {} gates, {} inputs, {} outputs",
        circuit.gate_count(),
        circuit.input_count(),
        circuit.output_count()
    );

    // Production test set.
    let result = Atpg::new(AtpgOptions::default()).run(&circuit)?;
    let patterns = result.patterns.fill_all(result.fill);
    println!(
        "production test set: {} patterns, {:.1}% coverage",
        patterns.len(),
        result.fault_coverage() * 100.0
    );

    // The "defective device": a secret fault.
    let candidates = collapse_faults(&circuit).representatives().to_vec();
    let secret = candidates[candidates.len() / 3];
    println!("secret defect: {}", secret.describe(&circuit));

    // Tester log.
    let syndrome = syndrome_of_fault(&circuit, &patterns, secret)?;
    let failing = syndrome
        .iter()
        .filter(|o| !o.failing_outputs.is_empty())
        .count();
    println!(
        "tester observed {failing} failing patterns of {}",
        syndrome.len()
    );

    // Diagnosis, pattern-level then output-level.
    let coarse = diagnose(&circuit, &syndrome, &candidates)?;
    let refined = diagnose_with_outputs(&circuit, &syndrome, &candidates)?;
    println!("\ntop candidates (output-level matching):");
    for c in refined.iter().take(5) {
        println!(
            "  {:<18} score {:.3}  (matched {}, missed {}, false alarms {})",
            c.fault.describe(&circuit),
            c.score(),
            c.matched_failures,
            c.missed_failures,
            c.false_alarms
        );
    }
    println!(
        "\nsecret fault rank: pattern-level #{}, output-level #{} (0 = top)",
        rank_of(&coarse, secret).expect("candidate present"),
        rank_of(&refined, secret).expect("candidate present"),
    );
    let perfect = refined.iter().filter(|c| c.is_perfect()).count();
    println!(
        "{perfect} candidate(s) perfectly explain the syndrome (equivalence class of the defect)"
    );
    Ok(())
}
