//! Quickstart: compute the paper's headline comparison in a few lines.
//!
//! Builds the SOC1 parameter model (Table 1 of the paper), runs the TDV
//! analysis at the paper's measured monolithic pattern count, and prints
//! the table plus the headline ratios.
//!
//! Run with: `cargo run --example quickstart`

use modsoc::analysis::report::render_core_table;
use modsoc::analysis::{SocTdvAnalysis, TdvOptions};
use modsoc::soc::itc02;
use modsoc::soc::{CoreSpec, Soc};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A SOC is just cores with (I, O, B, S, T) parameters plus the
    //    embedding hierarchy. Build one by hand...
    let mut soc = Soc::new("my_soc");
    let a = soc.add_core(CoreSpec::leaf("dsp", 32, 32, 0, 1200, 310))?;
    let b = soc.add_core(CoreSpec::leaf("uart", 12, 8, 0, 90, 45))?;
    soc.add_core(CoreSpec::parent("top", 64, 48, 0, 0, 3, vec![a, b]))?;

    let analysis = SocTdvAnalysis::compute(&soc, &TdvOptions::default())?;
    println!("== hand-built SOC ==");
    println!("{}", render_core_table(&soc, &analysis));

    // 2. ...or use the embedded benchmark data from the paper.
    let soc1 = itc02::soc1();
    let analysis = SocTdvAnalysis::compute_with_measured_tmono(
        &soc1,
        &TdvOptions::tables_1_2(),
        itc02::SOC1_MEASURED_TMONO,
    )?;
    println!("== SOC1 (paper Table 1) ==");
    println!("{}", render_core_table(&soc1, &analysis));
    println!(
        "modular testing moves {} bits instead of {} — a {:.2}x reduction",
        analysis.modular().total(),
        analysis.monolithic().total(),
        analysis.reduction_ratio()
    );
    Ok(())
}
