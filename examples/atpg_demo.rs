//! Drive the ATPG substrate directly: parse a `.bench` netlist, inspect
//! its fault universe, generate tests, and verify coverage.
//!
//! Run with: `cargo run --example atpg_demo`

use modsoc::atpg::collapse::collapse_faults;
use modsoc::atpg::fault::FaultStatus;
use modsoc::atpg::{Atpg, AtpgOptions};
use modsoc::netlist::bench_format::parse_bench;
use modsoc::netlist::cone::extract_cones;
use modsoc::netlist::CircuitStats;

// The classic ISCAS'85 c17 plus a redundant OR stage (g24 = a OR NOT a is
// constant 1, so its stuck-at-1 fault is untestable).
const BENCH: &str = "
INPUT(g1)
INPUT(g2)
INPUT(g3)
INPUT(g6)
INPUT(g7)
OUTPUT(g22)
OUTPUT(g23)
OUTPUT(g24)
g10 = NAND(g1, g3)
g11 = NAND(g3, g6)
g16 = NAND(g2, g11)
g19 = NAND(g11, g7)
g22 = NAND(g10, g16)
g23 = NAND(g16, g19)
gn = NOT(g1)
g24 = OR(g1, gn)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = parse_bench("c17_plus", BENCH)?;
    println!("{}", CircuitStats::of(&circuit)?);

    let cones = extract_cones(&circuit)?;
    println!(
        "{} logic cones, widths {:?}, {} overlapping pairs",
        cones.cones().len(),
        cones.cones().iter().map(|c| c.width()).collect::<Vec<_>>(),
        cones.overlapping_pairs()
    );

    let collapsed = collapse_faults(&circuit);
    println!(
        "fault universe: {} stuck-at faults collapse to {} classes ({:.2}x)",
        collapsed.universe_size(),
        collapsed.class_count(),
        collapsed.collapse_ratio()
    );

    let result = Atpg::new(AtpgOptions::default()).run(&circuit)?;
    println!(
        "ATPG: {} patterns, {:.1}% coverage, {} redundant fault(s) proven",
        result.pattern_count(),
        result.fault_coverage() * 100.0,
        result.stats.redundant
    );
    for (fault, status) in &result.fault_statuses {
        if *status == FaultStatus::Redundant {
            println!("  redundant: {}", fault.describe(&circuit));
        }
    }
    println!("\nfinal test cubes (X = don't care):");
    for cube in result.patterns.cubes() {
        println!("  {cube}");
    }
    Ok(())
}
