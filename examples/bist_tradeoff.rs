//! BIST vs ATE-stored patterns: the other way to cut test data volume.
//!
//! The paper's reference architecture allows each core's test source to
//! be on-chip (LFSR + MISR) instead of tester-stored patterns. BIST
//! reduces the external test data volume for a core to (nearly) zero —
//! but pays with many more applied patterns and, on random-resistant
//! logic, lost coverage. This example quantifies the trade on two
//! generated cores of different random-testability.
//!
//! Run with: `cargo run --release --example bist_tradeoff`

use modsoc::atpg::bist::{evaluate_bist, Lfsr};
use modsoc::atpg::collapse::collapse_faults;
use modsoc::atpg::{Atpg, AtpgOptions};
use modsoc::circuitgen::{generate, CoreProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // XOR-rich logic propagates everything and is random-friendly;
    // wide AND/OR cones need specific all-ones/all-zeros excitation and
    // resist random patterns.
    for (label, xor_fraction, wmin, wmax) in [
        ("random-friendly", 0.5, 4, 8),
        ("random-resistant", 0.0, 16, 22),
    ] {
        let mut profile = CoreProfile::new(label, 24, 8, 12).with_seed(5);
        profile.xor_fraction = xor_fraction;
        profile.hard_cone_fraction = 0.3;
        profile.min_cone_width = wmin;
        profile.max_cone_width = wmax;
        let circuit = generate(&profile)?;
        let model = circuit.to_test_model()?.circuit;
        let faults = collapse_faults(&model).representatives().to_vec();

        // Deterministic ATE flow.
        let det = Atpg::new(AtpgOptions::default()).run(&circuit)?;
        let stimulus_bits = det.pattern_count() * model.input_count();

        // BIST flow at a few pattern budgets.
        println!(
            "== {label} core ({} gates, {} faults) ==",
            circuit.gate_count(),
            faults.len()
        );
        println!(
            "deterministic ATE: {} patterns, {:.1}% coverage, {} external stimulus bits",
            det.pattern_count(),
            det.fault_coverage() * 100.0,
            stimulus_bits
        );
        for budget in [256usize, 1024, 4096] {
            let outcome = evaluate_bist(&model, &faults, Lfsr::standard(0xB157), budget)?;
            println!(
                "BIST {budget:>5} patterns: {:.1}% coverage, 0 external stimulus bits (signature {:#010x})",
                outcome.coverage * 100.0,
                outcome.good_signature
            );
        }
        println!();
    }
    println!("BIST erases the paper's TDV cost entirely, but random-resistant cores");
    println!("plateau below deterministic coverage — which is why hybrid flows store");
    println!("top-up patterns on the tester and the paper's TDV analysis still binds.");
    Ok(())
}
