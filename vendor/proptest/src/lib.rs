//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of proptest it uses: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range and tuple and `Vec` strategies,
//! [`collection::vec`], [`prelude::ProptestConfig`], and the
//! [`proptest!`]/[`prop_assert!`] macros.
//!
//! Differences from upstream:
//!
//! * **No shrinking.** A failing case panics with the standard assert
//!   message; the inputs are deterministic per test name and case index,
//!   so a failure reproduces exactly by re-running the test.
//! * **Deterministic by default.** The per-test RNG stream is seeded
//!   from the test's name (FNV-1a), optionally XOR-ed with
//!   `PROPTEST_SEED` from the environment. CI runs are therefore
//!   reproducible with no extra configuration.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded from arbitrary bytes (usually the test name), XOR-ed
    /// with the `PROPTEST_SEED` environment variable when set.
    #[must_use]
    pub fn deterministic(key: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = seed.trim().parse::<u64>() {
                h ^= seed;
            }
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of test values.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this subset collapses them into direct generation.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the strategy type (compatibility shim; upstream returns a
    /// `BoxedStrategy`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::boxed`].
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (subset of upstream's
/// `Arbitrary`): uniform over the full value range.
pub trait Arbitrary: Sized {
    /// Draw one uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T` (upstream's `any::<T>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// String generation from a regex pattern (upstream implements
/// `Strategy` for `&str` via `regex-syntax`; this is a hand-rolled
/// generator for the subset the workspace's properties use: literals,
/// `\`-escapes, `.`, `[a-z0-9_]`-style classes, groups with `|`
/// alternation, and the `?`/`*`/`+`/`{m}`/`{m,n}` repetitions).
mod string_gen {
    use super::TestRng;

    enum Node {
        Alt(Vec<Node>),
        Seq(Vec<Node>),
        Repeat(Box<Node>, usize, usize),
        Literal(char),
        Dot,
        Class(Vec<(char, char)>),
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let (node, pos) = parse_alt(&chars, 0);
        assert_eq!(
            pos,
            chars.len(),
            "unsupported trailing syntax in regex `{pattern}`"
        );
        let mut out = String::new();
        emit(&node, rng, &mut out);
        out
    }

    fn parse_alt(s: &[char], mut pos: usize) -> (Node, usize) {
        let mut branches = Vec::new();
        let (first, p) = parse_seq(s, pos);
        pos = p;
        branches.push(first);
        while pos < s.len() && s[pos] == '|' {
            let (next, p) = parse_seq(s, pos + 1);
            pos = p;
            branches.push(next);
        }
        if branches.len() == 1 {
            (branches.pop().expect("one branch"), pos)
        } else {
            (Node::Alt(branches), pos)
        }
    }

    fn parse_seq(s: &[char], mut pos: usize) -> (Node, usize) {
        let mut items = Vec::new();
        while pos < s.len() && s[pos] != '|' && s[pos] != ')' {
            let (atom, p) = parse_atom(s, pos);
            pos = p;
            // Optional repetition suffix.
            let (lo, hi, p) = parse_repeat(s, pos);
            pos = p;
            if (lo, hi) == (1, 1) {
                items.push(atom);
            } else {
                items.push(Node::Repeat(Box::new(atom), lo, hi));
            }
        }
        (Node::Seq(items), pos)
    }

    fn parse_repeat(s: &[char], pos: usize) -> (usize, usize, usize) {
        match s.get(pos) {
            Some('?') => (0, 1, pos + 1),
            Some('*') => (0, 8, pos + 1),
            Some('+') => (1, 8, pos + 1),
            Some('{') => {
                let close = s[pos..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|i| pos + i)
                    .expect("unterminated `{` in regex");
                let body: String = s[pos + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    None => {
                        let n = body.parse().expect("numeric repeat count");
                        (n, n)
                    }
                    Some((lo, hi)) => (
                        lo.parse().expect("numeric repeat lower bound"),
                        hi.parse().expect("numeric repeat upper bound"),
                    ),
                };
                (lo, hi, close + 1)
            }
            _ => (1, 1, pos),
        }
    }

    fn parse_atom(s: &[char], pos: usize) -> (Node, usize) {
        match s[pos] {
            '\\' => {
                let c = *s.get(pos + 1).expect("dangling `\\` in regex");
                let node = match c {
                    'd' => Node::Class(vec![('0', '9')]),
                    'w' => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    's' => Node::Class(vec![(' ', ' '), ('\t', '\t')]),
                    other => Node::Literal(other),
                };
                (node, pos + 2)
            }
            '.' => (Node::Dot, pos + 1),
            '[' => {
                let mut ranges = Vec::new();
                let mut i = pos + 1;
                while i < s.len() && s[i] != ']' {
                    let c = if s[i] == '\\' {
                        i += 1;
                        s[i]
                    } else {
                        s[i]
                    };
                    if s.get(i + 1) == Some(&'-') && s.get(i + 2).is_some_and(|&e| e != ']') {
                        ranges.push((c, s[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((c, c));
                        i += 1;
                    }
                }
                assert!(i < s.len(), "unterminated `[` in regex");
                (Node::Class(ranges), i + 1)
            }
            '(' => {
                let (inner, p) = parse_alt(s, pos + 1);
                assert_eq!(s.get(p), Some(&')'), "unterminated `(` in regex");
                (inner, p + 1)
            }
            other => (Node::Literal(other), pos + 1),
        }
    }

    fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Alt(branches) => {
                let pick = rng.below(branches.len() as u64) as usize;
                emit(&branches[pick], rng, out);
            }
            Node::Seq(items) => {
                for item in items {
                    emit(item, rng, out);
                }
            }
            Node::Repeat(inner, lo, hi) => {
                let n = lo + rng.below((hi - lo + 1) as u64) as usize;
                for _ in 0..n {
                    emit(inner, rng, out);
                }
            }
            Node::Literal(c) => out.push(*c),
            Node::Dot => {
                // Mostly printable ASCII with an occasional awkward
                // character (upstream `.` is any char but newline).
                if rng.below(10) == 0 {
                    const POOL: &[char] = &['\t', '\0', '\u{7F}', 'é', 'λ', '\u{FFFD}', '🦀'];
                    out.push(POOL[rng.below(POOL.len() as u64) as usize]);
                } else {
                    out.push(char::from_u32(0x20 + rng.below(0x5F) as u32).expect("ascii"));
                }
            }
            Node::Class(ranges) => {
                let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                let span = (hi as u32) - (lo as u32) + 1;
                out.push(
                    char::from_u32(lo as u32 + rng.below(u64::from(span)) as u32)
                        .expect("class range"),
                );
            }
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string_gen::generate(self, rng)
    }
}

/// See [`prop_oneof!`]: picks uniformly among boxed strategies.
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "empty prop_oneof");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// Pick uniformly among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // 53 uniform mantissa bits -> [0, 1), scaled to the range.
                let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (frac as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let frac = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + (frac as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length bound for [`vec`]: built from `a..b` or `a..=b`
    /// (upstream's `SizeRange`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end_excl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                start: r.start,
                end_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                start: *r.start(),
                end_excl: r.end().saturating_add(1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                start: n,
                end_excl: n + 1,
            }
        }
    }

    /// A `Vec` of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        assert!(size.start < size.end_excl, "empty size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end_excl - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Why a property case did not pass (subset of upstream).
///
/// Bodies may `return Ok(())` to accept a case early or
/// `Err(TestCaseError::reject(..))` to discard it; the runner treats a
/// rejected case as skipped, not failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The generated input was infeasible; try the next case.
    Reject(String),
}

impl TestCaseError {
    /// A failure with a message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (input discarded, not a failure).
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Test-runner configuration (subset: case count).
pub mod test_runner {
    pub use super::{TestCaseError, TestRng};

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }
}

/// The usual `use proptest::prelude::*` import surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Arbitrary, BoxedStrategy, Just, Strategy, TestCaseError, Union};
}

/// Assert a condition inside a property (panics on failure; upstream
/// records and shrinks instead).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn name(x in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                // Mirror upstream: the body runs as a
                // `Result<(), TestCaseError>` function so it may
                // `return Ok(())` (accept) or reject a case early.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err($crate::TestCaseError::Fail(msg)) = __outcome {
                    panic!("property {} failed on case {}: {}", stringify!($name), __case, msg);
                }
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = crate::TestRng::deterministic("t");
        for _ in 0..200 {
            let v = (1usize..5).generate(&mut rng);
            assert!((1..5).contains(&v));
            let (a, b) = ((0u8..3), (10u64..=12)).generate(&mut rng);
            assert!(a < 3 && (10..=12).contains(&b));
        }
    }

    #[test]
    fn map_and_flat_map() {
        let mut rng = crate::TestRng::deterministic("m");
        let s = (1usize..4).prop_flat_map(|n| {
            let elems: Vec<_> = (0..n).map(|_| 0u8..10).collect();
            (elems, 100u64..200)
        });
        for _ in 0..100 {
            let (v, k) = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
            assert!((100..200).contains(&k));
        }
        let doubled = (0u64..4).prop_map(|x| x * 2);
        for _ in 0..20 {
            assert!(doubled.generate(&mut rng) % 2 == 0);
        }
    }

    #[test]
    fn collection_vec_lengths() {
        let mut rng = crate::TestRng::deterministic("v");
        let s = collection::vec(0u8..3, 1..40);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..40).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_form_runs(x in 0u64..100, ys in collection::vec(0u8..3, 1..5)) {
            prop_assert!(x < 100);
            prop_assert!(!ys.is_empty());
            prop_assert_eq!(ys.len().min(4), ys.len());
        }
    }
}
