//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin slice of `rand` it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`Rng`] extension
//! methods `gen`, `gen_range` and `gen_bool`, and
//! [`seq::SliceRandom::shuffle`]. The generator is SplitMix64-based and
//! fully deterministic per seed, which is all the workspace requires
//! (reproducible pattern counts), but the stream differs from upstream
//! `rand`'s ChaCha-based `StdRng`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible uniformly by [`Rng::gen`] (stand-in for upstream's
/// `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    /// Whether the range contains no values.
    fn is_empty(&self) -> bool;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn is_empty(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every u64 value is valid.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn is_empty(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of an inferred type (bools, unsigned ints, `f64`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching upstream `rand`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood) — passes BigCrush when used
            // as a stream, plenty for pattern seeding and shuffles.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Extension methods for slices (subset: `shuffle`, `choose`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2u64..=9);
            assert!((2..=9).contains(&w));
            let x = rng.gen_range(0i32..4);
            assert!((0..4).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
