//! Offline placeholder for `serde`.
//!
//! The workspace's `serde` features are opt-in and no crate enables them
//! by default; this stub exists solely so dependency resolution succeeds
//! without network access. Enabling a `serde` feature on a workspace
//! crate requires replacing this stub with the real `serde` (the derive
//! attribute paths are kept compatible: `serde::Serialize`,
//! `serde::Deserialize`).

#![forbid(unsafe_code)]
