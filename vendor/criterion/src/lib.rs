//! Offline drop-in subset of the `criterion` API.
//!
//! Provides the surface the workspace's benches use — `Criterion`,
//! benchmark groups with `throughput`/`sample_size`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros — implemented as
//! straightforward timing loops with plain-text output. No statistical
//! analysis, plotting, or baselines; numbers are median-of-samples.

#![forbid(unsafe_code)]
// Shim mirrors upstream criterion's API surface verbatim, including the
// inherent `Criterion::default`.
#![allow(clippy::should_implement_trait)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing harness handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Time `f`, collecting `sample_size` samples after a warmup pass.
    /// In test mode (`--test`, as in upstream `cargo bench -- --test`)
    /// the closure runs exactly once and nothing is measured.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.samples.clear();
            return;
        }
        // Warmup + calibration: find an iteration count that lasts
        // roughly a millisecond so short closures get stable samples.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        self.samples.clear();
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples
                .push(start.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX));
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, median: Duration, throughput: Option<Throughput>) {
    let mut line = format!("{name:<48} {:>12}/iter", fmt_duration(median));
    if let Some(tp) = throughput {
        let secs = median.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:>14.0} elem/s", n as f64 / secs));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  {:>14.0} B/s", n as f64 / secs));
                }
            }
        }
    }
    println!("{line}");
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Criterion {
    /// Driver with default settings (10 samples per benchmark).
    #[must_use]
    pub fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            test_mode: false,
        }
    }

    /// Parse the harness CLI: only `--test` is honoured (run each
    /// benchmark body once without measuring — the smoke mode
    /// `cargo bench -- --test` provides upstream); other flags are
    /// accepted and ignored.
    #[must_use]
    pub fn configure_from_args(mut self) -> Criterion {
        self.test_mode = std::env::args().skip(1).any(|a| a == "--test");
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
            test_mode,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Criterion {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut b);
        if self.test_mode {
            println!("{:<48} test ok", name.as_ref());
        } else {
            report(name.as_ref(), b.median(), None);
        }
        self
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Shorter measurement budget — compatibility no-op.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut b);
        if self.test_mode {
            println!("{}/{:<40} test ok", self.name, name.as_ref());
        } else {
            report(
                &format!("{}/{}", self.name, name.as_ref()),
                b.median(),
                self.throughput,
            );
        }
        self
    }

    /// Close the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Bundle benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
