#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite, and the chaos
# sweeps under a pinned seed. Run from the repo root; exits nonzero on
# the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace)"
cargo test -q --workspace

echo "== chaos suite (fixed seed)"
# The chaos harness is seed-deterministic; PROPTEST_SEED pins the
# vendored proptest streams on top so the whole gate is reproducible.
PROPTEST_SEED=20080310 cargo test -q --test chaos --test parser_fuzz

echo "== criterion bench smoke (--test mode, no timing)"
# Each bench closure runs exactly once: catches benches that panic or
# drift out of sync with the library API without paying measurement time.
cargo bench -q -p modsoc-bench --bench atpg_engine -- --test

echo "== parallel determinism gate (--jobs 1 vs --jobs 4)"
# The worker pool's contract: reports are byte-identical at any --jobs
# value. Diverging output here means an order-dependent merge crept in.
cargo build -q --release --bin modsoc
./target/release/modsoc analyze testdata/soc2.soc --keep-going --jobs 1 > /tmp/modsoc_jobs1.txt
./target/release/modsoc analyze testdata/soc2.soc --keep-going --jobs 4 > /tmp/modsoc_jobs4.txt
diff /tmp/modsoc_jobs1.txt /tmp/modsoc_jobs4.txt \
  || { echo "FAIL: analyze output diverges between --jobs 1 and --jobs 4"; exit 1; }
./target/release/modsoc experiment mini --jobs 1 > /tmp/modsoc_exp1.txt
./target/release/modsoc experiment mini --jobs 4 > /tmp/modsoc_exp4.txt
diff /tmp/modsoc_exp1.txt /tmp/modsoc_exp4.txt \
  || { echo "FAIL: experiment output diverges between --jobs 1 and --jobs 4"; exit 1; }

echo "CI gate passed."
