#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite, and the chaos
# sweeps under a pinned seed. Run from the repo root; exits nonzero on
# the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace)"
cargo test -q --workspace

echo "== chaos suite (fixed seed)"
# The chaos harness is seed-deterministic; PROPTEST_SEED pins the
# vendored proptest streams on top so the whole gate is reproducible.
PROPTEST_SEED=20080310 cargo test -q --test chaos --test parser_fuzz

echo "CI gate passed."
