#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite, the chaos
# sweeps under a pinned seed, CLI smoke runs, and the parallel/metrics
# determinism gates. Run from the repo root; exits nonzero on the first
# failure.
#
# Opt-in extras:
#   MODSOC_BENCH_GATE=1 ./ci.sh   also runs the perf-regression gates:
#                                 atpg_phase_bench --check BENCH_pr7.json
#                                 for the engine, loadgen --check
#                                 BENCH_serve.json for serving throughput,
#                                 and tam_pack_bench --check BENCH_tam.json
#                                 for the rectangle packer.
#                                 Keep it off on noisy/shared machines; to
#                                 re-baseline after an intentional perf
#                                 change, rerun with --json BENCH_pr7.json
#                                 (engine) or --json BENCH_serve.json
#                                 (serving, see DESIGN.md §15) and commit
#                                 the refreshed file.
set -euo pipefail
cd "$(dirname "$0")"

workdir="$(mktemp -d)"
pids=()
cleanup() {
  # A failed gate must not leave daemons (or campaign workers) behind:
  # a surviving serve process keeps its port bound and makes the next
  # local run fail on bind. Kill every registered background pid before
  # dropping the workdir.
  for pid in ${pids[@]+"${pids[@]}"}; do
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace)"
cargo test -q --workspace

echo "== chaos suite (fixed seed)"
# The chaos harness is seed-deterministic; PROPTEST_SEED pins the
# vendored proptest streams on top so the whole gate is reproducible.
PROPTEST_SEED=20080310 cargo test -q --test chaos --test parser_fuzz

echo "== criterion bench smoke (--test mode, no timing)"
# Each bench closure runs exactly once: catches benches that panic or
# drift out of sync with the library API without paying measurement time.
cargo bench -q -p modsoc-bench --bench atpg_engine -- --test
cargo bench -q -p modsoc-bench --bench metrics_overhead -- --test

echo "== CLI smoke runs"
cargo build -q --release --bin modsoc
./target/release/modsoc --version
./target/release/modsoc index testdata/soc2.soc
./target/release/modsoc experiment soc2 --jobs 4 > "$workdir/soc2_smoke.txt"
grep -q "monolithic ATPG" "$workdir/soc2_smoke.txt" \
  || { echo "FAIL: experiment soc2 produced no monolithic summary"; exit 1; }
./target/release/modsoc analyze testdata/soc1.soc --exclude-chip-pins --measured-tmono 216 > "$workdir/soc1_smoke.txt"
grep -q "45,183" "$workdir/soc1_smoke.txt" \
  || { echo "FAIL: soc1.soc analyze lost the Table 1 modular TDV (45,183)"; exit 1; }

echo "== parallel determinism gate (--jobs 1 vs --jobs 4)"
# The worker pool's contract: reports are byte-identical at any --jobs
# value. Diverging output here means an order-dependent merge crept in.
./target/release/modsoc analyze testdata/soc2.soc --keep-going --jobs 1 > "$workdir/jobs1.txt"
./target/release/modsoc analyze testdata/soc2.soc --keep-going --jobs 4 > "$workdir/jobs4.txt"
diff "$workdir/jobs1.txt" "$workdir/jobs4.txt" \
  || { echo "FAIL: analyze output diverges between --jobs 1 and --jobs 4"; exit 1; }
./target/release/modsoc experiment mini --jobs 1 > "$workdir/exp1.txt"
./target/release/modsoc experiment mini --jobs 4 > "$workdir/exp4.txt"
diff "$workdir/exp1.txt" "$workdir/exp4.txt" \
  || { echo "FAIL: experiment output diverges between --jobs 1 and --jobs 4"; exit 1; }

echo "== fault-sim kernel smoke (wide vs narrow differential, --jobs 1 and 4)"
# The wide-word kernel's contract: MODSOC_FAULT_SIM=narrow forces every
# blocked sweep back onto the single-u64 path, and the full-binary
# output must not move a byte in either direction at any --jobs value.
MODSOC_FAULT_SIM=narrow ./target/release/modsoc analyze testdata/soc2.soc --keep-going --jobs 1 > "$workdir/narrow1.txt"
MODSOC_FAULT_SIM=narrow ./target/release/modsoc analyze testdata/soc2.soc --keep-going --jobs 4 > "$workdir/narrow4.txt"
diff "$workdir/jobs1.txt" "$workdir/narrow1.txt" \
  || { echo "FAIL: wide and narrow fault-sim kernels diverge at --jobs 1"; exit 1; }
diff "$workdir/jobs4.txt" "$workdir/narrow4.txt" \
  || { echo "FAIL: wide and narrow fault-sim kernels diverge at --jobs 4"; exit 1; }

echo "== metrics determinism gate (counters identical at --jobs 1 vs --jobs 4)"
# The metrics layer's contract: every report field except wall times
# (*_ms), the sched objects and the jobs field itself is deterministic.
# The serializer puts each volatile field on its own line so this filter
# strips exactly the volatile subset.
./target/release/modsoc experiment mini --jobs 1 --metrics "$workdir/m1.json" > /dev/null
./target/release/modsoc experiment mini --jobs 4 --metrics "$workdir/m4.json" > /dev/null
diff <(grep -vE '"(sched|jobs)": |_ms":|"store_' "$workdir/m1.json") \
     <(grep -vE '"(sched|jobs)": |_ms":|"store_' "$workdir/m4.json") \
  || { echo "FAIL: metrics counters diverge between --jobs 1 and --jobs 4"; exit 1; }

echo "== tam co-optimizer gate (smoke + --jobs determinism)"
# The rectangle packer's contract: the full comparison table is a pure
# function of (SOC, width, chains, ceiling) — byte-identical at any
# --jobs value — and the power-constrained variant stays feasible on a
# reconstructed ITC'02 SOC.
./target/release/modsoc tam soc2 --width 16 > "$workdir/tam_soc2.txt"
grep -q "soc2" "$workdir/tam_soc2.txt" \
  || { echo "FAIL: tam soc2 produced no comparison row"; cat "$workdir/tam_soc2.txt"; exit 1; }
./target/release/modsoc tam d695 --width 16 --power-ceiling 2000 > "$workdir/tam_d695.txt"
grep -q "constrained" "$workdir/tam_d695.txt" \
  || { echo "FAIL: tam d695 produced no constrained column"; cat "$workdir/tam_d695.txt"; exit 1; }
./target/release/modsoc tam --width 16 --jobs 1 > "$workdir/tam_j1.txt"
./target/release/modsoc tam --width 16 --jobs 4 > "$workdir/tam_j4.txt"
diff "$workdir/tam_j1.txt" "$workdir/tam_j4.txt" \
  || { echo "FAIL: tam table diverges between --jobs 1 and --jobs 4"; exit 1; }

echo "== store cache determinism gate (cold vs warm, --jobs 1 and 4)"
# The result store's contract: a warm run is byte-identical to the cold
# one on stdout at any --jobs value, and every engine run (4 cores +
# monolithic on soc2) is served from the cache.
store="$workdir/store"
./target/release/modsoc experiment soc2 --jobs 4 --store "$store" > "$workdir/cold.txt" 2> "$workdir/cold_err.txt"
grep -q "monolithic ATPG" "$workdir/cold.txt" \
  || { echo "FAIL: cold store run produced no monolithic summary"; exit 1; }
grep -q "store: 0 hits, 5 misses, 5 writes" "$workdir/cold_err.txt" \
  || { echo "FAIL: cold run did not write 5 entries"; cat "$workdir/cold_err.txt"; exit 1; }
for jobs in 1 4; do
  ./target/release/modsoc experiment soc2 --jobs "$jobs" --store "$store" \
    > "$workdir/warm$jobs.txt" 2> "$workdir/warm${jobs}_err.txt"
  grep -q "store: 5 hits, 0 misses" "$workdir/warm${jobs}_err.txt" \
    || { echo "FAIL: warm --jobs $jobs run missed the cache"; cat "$workdir/warm${jobs}_err.txt"; exit 1; }
  diff "$workdir/cold.txt" "$workdir/warm$jobs.txt" \
    || { echo "FAIL: warm --jobs $jobs report differs from the cold run"; exit 1; }
done

echo "== campaign resume gate"
# A re-invoked campaign must skip every journaled unit.
printf '%s' '{"schema":1,"name":"ci","units":[{"name":"m7","soc":"mini","seed":7},{"name":"m9","soc":"mini","seed":9}]}' > "$workdir/campaign.json"
./target/release/modsoc campaign "$workdir/campaign.json" --store "$store" > "$workdir/camp1.txt" 2>/dev/null
grep -q " ok " "$workdir/camp1.txt" \
  || { echo "FAIL: first campaign run completed no units"; cat "$workdir/camp1.txt"; exit 1; }
./target/release/modsoc campaign "$workdir/campaign.json" --store "$store" > "$workdir/camp2.txt" 2>/dev/null
[ "$(grep -c "skipped" "$workdir/camp2.txt")" -eq 2 ] \
  || { echo "FAIL: re-invoked campaign did not skip its journaled units"; cat "$workdir/camp2.txt"; exit 1; }

echo "== serve gate (daemon parity, shedding, graceful drain)"
# The service layer's contract: a served analyze is byte-identical to
# the CLI, a mixed workload passes the loadgen corruption check, a
# flooded daemon sheds with 503 (never hangs), and both shutdown paths
# (POST /shutdown, SIGTERM) drain and exit 0.
serve_store="$workdir/serve_store"
./target/release/modsoc serve --addr 127.0.0.1:0 --workers 2 --store "$serve_store" \
  > "$workdir/serve.log" 2>/dev/null &
serve_pid=$!
pids+=("$serve_pid")
for _ in $(seq 1 50); do
  grep -q "listening on" "$workdir/serve.log" && break
  sleep 0.1
done
serve_addr="$(sed -n 's|.*http://||p' "$workdir/serve.log")"
[ -n "$serve_addr" ] || { echo "FAIL: serve did not report its address"; exit 1; }
./target/release/modsoc analyze testdata/soc1.soc > "$workdir/serve_cli.txt"
./target/release/modsoc loadgen --addr "$serve_addr" --analyze-file testdata/soc1.soc \
  > "$workdir/serve_http.txt"
diff "$workdir/serve_cli.txt" "$workdir/serve_http.txt" \
  || { echo "FAIL: served analyze diverges from CLI stdout"; exit 1; }
./target/release/modsoc loadgen --addr "$serve_addr" --requests 48 --concurrency 8 --seed 20080310 \
  > "$workdir/loadgen.txt"
grep -q "zero-corruption check: PASS" "$workdir/loadgen.txt" \
  || { echo "FAIL: loadgen corruption check"; cat "$workdir/loadgen.txt"; exit 1; }
./target/release/modsoc loadgen --addr "$serve_addr" --shutdown > /dev/null
wait "$serve_pid" \
  || { echo "FAIL: daemon did not exit 0 after POST /shutdown"; exit 1; }

# A constrained second daemon must shed under flood and drain on SIGTERM.
./target/release/modsoc serve --addr 127.0.0.1:0 --workers 1 --queue 2 \
  > "$workdir/serve2.log" 2>/dev/null &
serve2_pid=$!
pids+=("$serve2_pid")
for _ in $(seq 1 50); do
  grep -q "listening on" "$workdir/serve2.log" && break
  sleep 0.1
done
serve2_addr="$(sed -n 's|.*http://||p' "$workdir/serve2.log")"
./target/release/modsoc loadgen --addr "$serve2_addr" --flood 24 > "$workdir/flood.txt"
grep -q "shed with 503" "$workdir/flood.txt" \
  || { echo "FAIL: flood report missing"; cat "$workdir/flood.txt"; exit 1; }
grep -q "retry-after on all 503s: PASS" "$workdir/flood.txt" \
  || { echo "FAIL: 503s without Retry-After"; cat "$workdir/flood.txt"; exit 1; }
kill -TERM "$serve2_pid"
wait "$serve2_pid" \
  || { echo "FAIL: daemon did not exit 0 after SIGTERM"; exit 1; }

echo "== serve keep-alive parity smoke (transport must never change bytes)"
# One keep-alive + batching daemon serves the same seeded mixed workload
# over both transports; the per-request response hashes must match line
# for line, and the persistent client must actually reuse its sockets.
ka_store="$workdir/ka_store"
./target/release/modsoc serve --addr 127.0.0.1:0 --workers 2 --keep-alive --batch-max 4 \
  --store "$ka_store" > "$workdir/serve3.log" 2>/dev/null &
serve3_pid=$!
pids+=("$serve3_pid")
for _ in $(seq 1 50); do
  grep -q "listening on" "$workdir/serve3.log" && break
  sleep 0.1
done
serve3_addr="$(sed -n 's|.*http://||p' "$workdir/serve3.log")"
[ -n "$serve3_addr" ] || { echo "FAIL: keep-alive serve did not report its address"; exit 1; }
./target/release/modsoc loadgen --addr "$serve3_addr" --requests 48 --concurrency 8 --seed 20080310 \
  --bodies-out "$workdir/bodies_close.txt" > /dev/null
./target/release/modsoc loadgen --addr "$serve3_addr" --requests 48 --concurrency 8 --seed 20080310 \
  --keep-alive --bodies-out "$workdir/bodies_ka.txt" > "$workdir/loadgen_ka.txt"
diff "$workdir/bodies_close.txt" "$workdir/bodies_ka.txt" \
  || { echo "FAIL: response bodies differ between close and keep-alive transports"; exit 1; }
grep -q "zero-corruption check: PASS" "$workdir/loadgen_ka.txt" \
  || { echo "FAIL: keep-alive loadgen corruption check"; cat "$workdir/loadgen_ka.txt"; exit 1; }
grep -qE "keep-alive: 48 requests over [0-9]+ connections \([1-9][0-9]* reused\)" "$workdir/loadgen_ka.txt" \
  || { echo "FAIL: keep-alive transport reported no socket reuse"; cat "$workdir/loadgen_ka.txt"; exit 1; }

if [[ "${MODSOC_BENCH_GATE:-0}" == "1" ]]; then
  echo "== serve throughput gate (loadgen --check BENCH_serve.json, 50% tolerance)"
  # Warm-up pass first: the committed baseline was measured against a
  # warm store, so the gate must be too.
  ./target/release/modsoc loadgen --addr "$serve3_addr" --requests 128 --concurrency 2 \
    --seed 20080310 --keep-alive > /dev/null
  ./target/release/modsoc loadgen --addr "$serve3_addr" --requests 128 --concurrency 2 \
    --seed 20080310 --keep-alive --label keepalive --check BENCH_serve.json --tolerance 0.5 \
    | tail -3
else
  echo "== serve throughput gate skipped (set MODSOC_BENCH_GATE=1 to enable)"
fi
./target/release/modsoc loadgen --addr "$serve3_addr" --shutdown > /dev/null
wait "$serve3_pid" \
  || { echo "FAIL: keep-alive daemon did not exit 0 after POST /shutdown"; exit 1; }

echo "== distributed campaign gate (two workers, one daemon, kill + resume)"
# The remote-store contract: concurrent `campaign --store-url` workers
# over one spec partition the units via claims (each unit's engine work
# runs exactly once — store write-count parity with a single local run),
# a worker killed mid-run loses nothing (its lease expires and peers or
# a rerun take over), and the merged journal + store sweep clean.
printf '%s' '{"schema":1,"name":"dist","units":[{"name":"d1","soc":"mini","seed":31},{"name":"d2","soc":"mini","seed":37},{"name":"d3","soc":"mini","seed":41},{"name":"d4","soc":"mini","seed":43}]}' > "$workdir/dist.json"
# Local baseline: the engine-write cost of one full single-process run.
base_store="$workdir/dist_base"
./target/release/modsoc campaign "$workdir/dist.json" --store "$base_store" \
  > "$workdir/dist_base.txt" 2> "$workdir/dist_base_err.txt"
base_writes="$(sed -n 's/.*misses, \([0-9]*\) writes.*/\1/p' "$workdir/dist_base_err.txt")"
[ -n "$base_writes" ] && [ "$base_writes" -gt 0 ] \
  || { echo "FAIL: baseline campaign reported no store writes"; cat "$workdir/dist_base_err.txt"; exit 1; }

dist_store="$workdir/dist_store"
./target/release/modsoc serve --addr 127.0.0.1:0 --workers 2 --store "$dist_store" \
  > "$workdir/serve4.log" 2>/dev/null &
serve4_pid=$!
pids+=("$serve4_pid")
for _ in $(seq 1 50); do
  grep -q "listening on" "$workdir/serve4.log" && break
  sleep 0.1
done
serve4_addr="$(sed -n 's|.*http://||p' "$workdir/serve4.log")"
[ -n "$serve4_addr" ] || { echo "FAIL: distributed-gate serve did not report its address"; exit 1; }

# Two concurrent workers; kill one mid-run (SIGKILL: no cleanup, its
# claim must simply stop being renewed and expire).
./target/release/modsoc campaign "$workdir/dist.json" --store-url "http://$serve4_addr" \
  --owner w1 --claim-lease-ms 2000 > "$workdir/dist_w1.txt" 2>/dev/null &
w1_pid=$!
pids+=("$w1_pid")
./target/release/modsoc campaign "$workdir/dist.json" --store-url "http://$serve4_addr" \
  --owner w2 --claim-lease-ms 2000 > "$workdir/dist_w2.txt" 2>/dev/null &
w2_pid=$!
pids+=("$w2_pid")
sleep 0.4
kill -9 "$w2_pid" 2>/dev/null || true
wait "$w2_pid" 2>/dev/null || true
wait "$w1_pid" \
  || { echo "FAIL: surviving worker did not complete the campaign"; cat "$workdir/dist_w1.txt"; exit 1; }
# Rerun the killed worker: everything is journaled by now, so it must
# skip all units and recompute nothing.
./target/release/modsoc campaign "$workdir/dist.json" --store-url "http://$serve4_addr" \
  --owner w2-retry --claim-lease-ms 2000 > "$workdir/dist_resume.txt" 2> "$workdir/dist_resume_err.txt" \
  || { echo "FAIL: rerun of the killed worker did not complete"; cat "$workdir/dist_resume.txt"; exit 1; }
[ "$(grep -c "skipped" "$workdir/dist_resume.txt")" -eq 4 ] \
  || { echo "FAIL: merged journal incomplete after kill + rerun"; cat "$workdir/dist_resume.txt"; exit 1; }
# Byte parity: the remote resume report must match a local resume of the
# baseline store line for line.
./target/release/modsoc campaign "$workdir/dist.json" --store "$base_store" \
  > "$workdir/dist_base2.txt" 2>/dev/null
diff "$workdir/dist_base2.txt" "$workdir/dist_resume.txt" \
  || { echo "FAIL: remote campaign report diverges from the local-store run"; exit 1; }
# Write parity: the daemon's store saw exactly one full run's writes —
# zero units were computed twice across both workers and the rerun.
./target/release/modsoc loadgen --addr "$serve4_addr" --dump-metrics > "$workdir/dist_metrics.json"
dist_writes="$(sed -n 's/.*"store":{[^}]*"writes":\([0-9]*\).*/\1/p' "$workdir/dist_metrics.json")"
[ "$dist_writes" = "$base_writes" ] \
  || { echo "FAIL: shared store writes ($dist_writes) != single-run writes ($base_writes): duplicated work"; exit 1; }
./target/release/modsoc loadgen --addr "$serve4_addr" --shutdown > /dev/null
wait "$serve4_pid" \
  || { echo "FAIL: distributed-gate daemon did not exit 0 after POST /shutdown"; exit 1; }
# The store the daemon leaves behind sweeps clean, and a size-bounded GC
# pass keeps it clean (journals are never collected).
./target/release/modsoc store verify "$dist_store" \
  || { echo "FAIL: distributed store has corrupt entries"; exit 1; }
./target/release/modsoc store gc "$dist_store" --max-bytes 8192 > "$workdir/dist_gc.txt" 2>/dev/null
grep -q "store gc: scanned" "$workdir/dist_gc.txt" \
  || { echo "FAIL: store gc produced no report"; cat "$workdir/dist_gc.txt"; exit 1; }
./target/release/modsoc store verify "$dist_store" \
  || { echo "FAIL: store corrupt after gc"; exit 1; }

if [[ "${MODSOC_BENCH_GATE:-0}" == "1" ]]; then
  echo "== perf regression gate (atpg_phase_bench --check, +50% tolerance)"
  # 50%, not the bench's 25% default: the container-class machines this
  # gate runs on show ~±30% best-of-N noise in the ms-scale phases. A
  # wide-kernel regression back to narrow speed is a ~5x fault_sim_ms
  # jump, so the gate still catches what it is here for.
  cargo build -q --release -p modsoc-bench --bin atpg_phase_bench
  ./target/release/atpg_phase_bench --check BENCH_pr7.json --tolerance 0.5

  echo "== tam packer regression gate (tam_pack_bench --check, +100% tolerance)"
  # The deterministic fields (pack_time/best_time/constrained_time/
  # backfills) are compared exactly regardless of tolerance, so heuristic
  # drift always fails; the wide timing tolerance only covers pack_ms on
  # noisy machines.
  cargo build -q --release -p modsoc-bench --bin tam_pack_bench
  ./target/release/tam_pack_bench --quick --check BENCH_tam.json --tolerance 1.0
else
  echo "== perf regression gate skipped (set MODSOC_BENCH_GATE=1 to enable)"
fi

echo "CI gate passed."
