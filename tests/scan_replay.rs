//! Integration: replay ATPG patterns through the cycle-accurate serial
//! scan simulator and verify they produce exactly the responses the
//! combinational test model predicts.
//!
//! This closes the loop on the workspace's central abstraction: the
//! paper (and any full-scan ATPG) reasons about a sequential circuit as
//! if flip-flops were pseudo-I/O; here we prove that an actual
//! shift–capture–shift protocol on the sequential netlist observes the
//! same values.

use modsoc::atpg::{Atpg, AtpgOptions};
use modsoc::circuitgen::{generate, CoreProfile};
use modsoc::netlist::scan::TestPoint;
use modsoc::netlist::scan_chain::{ScanChains, ScanSimulator};
use modsoc::netlist::sim::Simulator;

#[test]
fn serial_replay_matches_test_model_predictions() {
    let profile = CoreProfile::new("replay", 8, 5, 12).with_seed(21);
    let circuit = generate(&profile).expect("generates");
    let result = Atpg::new(AtpgOptions::default())
        .run(&circuit)
        .expect("atpg");
    let model = result.test_model.as_ref().expect("sequential circuit");

    // Predict responses with the combinational model.
    let sim = Simulator::new(&model.circuit).expect("sim");
    let filled = result.patterns.fill_all(result.fill);

    // Set up the serial protocol: 3 balanced chains.
    let chains = ScanChains::balanced(&circuit, 3).expect("chains");
    let mut serial = ScanSimulator::new(&circuit, &chains).expect("serial sim");

    // Model input order: primary inputs first, then scan cells in dff
    // declaration order (documented by Circuit::to_test_model).
    let pi_count = circuit.input_count();
    // Per-chain slices over the dff-order scan word.
    let chain_spans: Vec<(usize, usize)> = {
        let mut spans = Vec::new();
        let mut offset = 0;
        for chain in chains.chains() {
            spans.push((offset, chain.len()));
            offset += chain.len();
        }
        spans
    };

    for (k, pattern) in filled.iter().enumerate().take(40) {
        // Predicted: combinational model outputs.
        let words: Vec<u64> = pattern.iter().map(|&b| u64::from(b)).collect();
        let predicted = sim.run_outputs(&model.circuit, &words);

        // Applied: serial scan protocol.
        let pis = pattern[..pi_count].to_vec();
        let scan_word = &pattern[pi_count..];
        let scan_in: Vec<Vec<bool>> = chain_spans
            .iter()
            .map(|&(off, len)| scan_word[off..off + len].to_vec())
            .collect();
        let response = serial.apply_pattern(&pis, &scan_in).expect("applies");

        // Compare primary outputs.
        for (i, out) in model.outputs.iter().enumerate() {
            let want = predicted[i] & 1 == 1;
            match out {
                TestPoint::Primary(_) => {
                    assert_eq!(response.outputs[i], want, "pattern {k}: PO {i} mismatch");
                }
                TestPoint::ScanCell(ff) => {
                    // Find which chain/position holds this ff.
                    let (ci, pi_pos) = chains
                        .chains()
                        .iter()
                        .enumerate()
                        .find_map(|(ci, chain)| chain.iter().position(|f| f == ff).map(|p| (ci, p)))
                        .expect("ff is on a chain");
                    assert_eq!(
                        response.captured[ci][pi_pos], want,
                        "pattern {k}: capture of {ff} mismatch"
                    );
                }
            }
        }
    }
}

#[test]
fn replay_detects_an_injected_fault() {
    // Replay the pattern set on a *faulty* netlist (one gate swapped)
    // and confirm at least one response differs — i.e. the shipped
    // patterns really catch a netlist-level defect through the serial
    // protocol, not just in the abstract model.
    use modsoc::netlist::{Circuit, GateKind};

    let profile = CoreProfile::new("faulty", 6, 4, 8).with_seed(33);
    let good = generate(&profile).expect("generates");
    let result = Atpg::new(AtpgOptions::default()).run(&good).expect("atpg");
    let filled = result.patterns.fill_all(result.fill);

    // Rebuild the circuit with one AND gate turned into OR (a gross
    // functional defect that single-stuck-at patterns usually catch).
    let mut bad = Circuit::new("bad");
    let mut swapped = false;
    let mut map: Vec<Option<modsoc::netlist::NodeId>> = vec![None; good.node_count()];
    for &ff in good.dffs() {
        let id = bad
            .add_dff_deferred(good.node(ff).name.clone())
            .expect("dff");
        map[ff.index()] = Some(id);
    }
    for id in good.topo_order().expect("order") {
        if map[id.index()].is_some() {
            continue;
        }
        let node = good.node(id);
        let mapped = match node.kind {
            GateKind::Input => bad.add_input(node.name.clone()),
            kind => {
                let fanin: Vec<_> = node
                    .fanin
                    .iter()
                    .map(|f| map[f.index()].expect("fanin placed"))
                    .collect();
                let k = if !swapped && kind == GateKind::And && fanin.len() >= 2 {
                    swapped = true;
                    GateKind::Or
                } else {
                    kind
                };
                bad.add_gate(node.name.clone(), k, &fanin).expect("gate")
            }
        };
        map[id.index()] = Some(mapped);
    }
    for &ff in good.dffs() {
        let data = good.node(ff).fanin[0];
        bad.set_fanin(
            map[ff.index()].expect("dff placed"),
            &[map[data.index()].expect("data placed")],
        )
        .expect("wire");
    }
    for &po in good.outputs() {
        bad.mark_output(map[po.index()].expect("po placed"));
    }
    assert!(swapped, "circuit should contain an AND gate to corrupt");

    let pi_count = good.input_count();
    let chains_good = ScanChains::balanced(&good, 2).expect("chains");
    let chains_bad = ScanChains::balanced(&bad, 2).expect("chains");
    let mut sim_good = ScanSimulator::new(&good, &chains_good).expect("sim");
    let mut sim_bad = ScanSimulator::new(&bad, &chains_bad).expect("sim");

    let mut difference_seen = false;
    for pattern in &filled {
        let pis = pattern[..pi_count].to_vec();
        let scan_word = &pattern[pi_count..];
        let mut scan_in = Vec::new();
        let mut off = 0;
        for chain in chains_good.chains() {
            scan_in.push(scan_word[off..off + chain.len()].to_vec());
            off += chain.len();
        }
        let rg = sim_good.apply_pattern(&pis, &scan_in).expect("good");
        let rb = sim_bad.apply_pattern(&pis, &scan_in).expect("bad");
        if rg.outputs != rb.outputs || rg.captured != rb.captured {
            difference_seen = true;
            break;
        }
    }
    assert!(difference_seen, "pattern set should expose the gate swap");
}
