//! Parser robustness properties: arbitrary byte-level mutations of
//! valid `.bench` and `.soc` sources must never panic the parsers —
//! every input either parses or is rejected with a typed error whose
//! `Display` also does not panic.

use proptest::prelude::*;

use modsoc::netlist::bench_format::parse_bench;
use modsoc::soc::format::parse_soc;

const BASE_BENCH: &str = "# fuzz base
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
OUTPUT(q)
f1 = DFF(n2)
n1 = NAND(a, b)
n2 = NOR(b, c)
y = AND(n1, n2)
q = OR(f1, a)
";

const BASE_SOC: &str = "# fuzz base
soc fuzz
core top i=8 o=4 b=1 s=0 t=2 children=a,b
core a i=4 o=2 b=0 s=16 t=40
core b i=2 o=2 b=0 s=8 t=90
";

/// Apply `(offset, mutation)` pairs to the base bytes: each mutation
/// XORs a byte, deletes it, or inserts a raw byte before it. The result
/// is deliberately NOT re-validated as UTF-8 — the parsers take `&str`,
/// so we recover a string lossily, which is exactly what a CLI reading a
/// corrupted file would hand them.
fn mutate(base: &str, edits: &[(usize, u8, u8)]) -> String {
    let mut bytes = base.as_bytes().to_vec();
    for &(offset, op, payload) in edits {
        if bytes.is_empty() {
            break;
        }
        let at = offset % bytes.len();
        match op % 3 {
            0 => bytes[at] ^= payload,
            1 => {
                bytes.remove(at);
            }
            _ => bytes.insert(at, payload),
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn mutated_bench_never_panics_parser(
        edits in collection::vec((0usize..4096, 0u8..=255, 0u8..=255), 1..24)
    ) {
        let source = mutate(BASE_BENCH, &edits);
        match parse_bench("fuzz", &source) {
            Ok(circuit) => {
                // A surviving parse must produce an internally
                // consistent circuit.
                circuit.validate().expect("parsed circuits validate");
            }
            Err(err) => {
                prop_assert!(!err.to_string().is_empty());
            }
        }
    }

    #[test]
    fn mutated_soc_never_panics_parser(
        edits in collection::vec((0usize..4096, 0u8..=255, 0u8..=255), 1..24)
    ) {
        let source = mutate(BASE_SOC, &edits);
        match parse_soc(&source) {
            Ok(soc) => {
                soc.validate().expect("parsed socs validate");
            }
            Err(err) => {
                prop_assert!(!err.to_string().is_empty());
            }
        }
    }

    #[test]
    fn truncations_never_panic_parsers(cut in 0usize..512) {
        let bench = &BASE_BENCH[..cut.min(BASE_BENCH.len())];
        if let Ok(c) = parse_bench("trunc", bench) {
            c.validate().expect("valid");
        }
        let soc = &BASE_SOC[..cut.min(BASE_SOC.len())];
        if let Ok(s) = parse_soc(soc) {
            s.validate().expect("valid");
        }
    }
}
