//! Chaos-harness acceptance suite: corrupted inputs and injected budget
//! exhaustion must always end in a typed error or a partial result —
//! never a panic or a hang.
//!
//! The sweeps run with a fixed seed so a failure names a reproducible
//! case index (`PROPTEST_SEED` does not apply here; the chaos module has
//! its own deterministic RNG).

use std::time::{Duration, Instant};

use modsoc::analysis::chaos::{
    run_bench_chaos, run_bench_chaos_jobs, run_soc_chaos, run_soc_chaos_jobs, ChaosRng,
    ALL_CORRUPTIONS,
};
use modsoc::analysis::runctl::{analyze_soc_guarded, CoreFailure, CoreOutcomeKind};
use modsoc::analysis::{RunBudget, TdvOptions};
use modsoc::atpg::{Atpg, AtpgOptions, ExhaustReason};
use modsoc::netlist::bench_format::parse_bench;
use modsoc::soc::format::parse_soc;

const CHAOS_SEED: u64 = 0x5EED_50C0_DA7A;

const BASE_BENCH: &str = "# chaos base
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
OUTPUT(z)
f1 = DFF(n3)
n1 = NAND(a, b)
n2 = NOR(c, d)
n3 = XOR(n1, n2)
y = AND(n3, f1)
z = OR(n1, d)
";

const BASE_SOC: &str = "# chaos base
soc chaos
core top i=12 o=6 b=0 s=0 t=4 children=a,b,c
core a i=6 o=3 b=0 s=24 t=120
core b i=4 o=2 b=1 s=12 t=64
core c i=2 o=2 b=0 s=8 t=30
";

#[test]
fn bench_chaos_sweep_200_cases_no_panics() {
    // Fan the fixed-seed sweep across the pool; per-case RNG derivation
    // keeps every case identical to a serial run.
    let report = run_bench_chaos_jobs(BASE_BENCH, 200, CHAOS_SEED, 0);
    assert_eq!(report.cases, 200);
    assert!(report.no_panics(), "panics escaped: {:?}", report.panics);
    // Every case lands in exactly one bucket.
    assert_eq!(report.ok + report.partial + report.typed_errors, 200);
    // With 1-3 corruption ops per case, a healthy mix of rejections and
    // surviving (possibly budget-limited) runs is expected; all three
    // buckets must be exercised or the harness is not really probing.
    assert!(report.typed_errors > 0, "{report:?}");
    assert!(report.ok + report.partial > 0, "{report:?}");
}

#[test]
fn soc_chaos_sweep_200_cases_no_panics() {
    let report = run_soc_chaos_jobs(BASE_SOC, 200, CHAOS_SEED, 0);
    assert_eq!(report.cases, 200);
    assert!(report.no_panics(), "panics escaped: {:?}", report.panics);
    assert_eq!(report.ok + report.degraded + report.typed_errors, 200);
    assert!(report.typed_errors > 0, "{report:?}");
    assert!(report.ok + report.degraded > 0, "{report:?}");
}

#[test]
fn chaos_sweeps_are_deterministic_for_a_seed() {
    let a = run_bench_chaos(BASE_BENCH, 40, 1234);
    let b = run_bench_chaos(BASE_BENCH, 40, 1234);
    assert_eq!(a, b);
    let c = run_soc_chaos(BASE_SOC, 40, 1234);
    let d = run_soc_chaos(BASE_SOC, 40, 1234);
    assert_eq!(c, d);
}

/// The pooled sweep classifies exactly the cases the serial sweep does.
/// (`.soc` cases have no wall-clock budgets, so the reports are equal
/// field for field at every job count.)
#[test]
fn parallel_soc_chaos_sweep_matches_serial() {
    let serial = run_soc_chaos(BASE_SOC, 200, CHAOS_SEED);
    for jobs in [2, 4, 8] {
        let parallel = run_soc_chaos_jobs(BASE_SOC, 200, CHAOS_SEED, jobs);
        assert_eq!(parallel, serial, "jobs={jobs}");
    }
}

/// Acceptance criterion: a corrupted `.soc` whose poisoned core carries
/// absurd counts still produces TDV rows for the healthy cores plus a
/// typed per-core failure.
#[test]
fn poisoned_soc_core_degrades_not_destroys() {
    let source = "soc wounded
core good_a i=4 o=3 b=0 s=20 t=100
core poisoned i=1 o=1 b=0 s=18446744073709551615 t=18446744073709551615
core good_b i=2 o=2 b=0 s=10 t=50
";
    let soc = parse_soc(source).expect("parses: the counts are valid u64s");
    let completion = analyze_soc_guarded(&soc, &TdvOptions::tables_1_2());
    assert_eq!(completion.result.len(), 2, "healthy cores keep their rows");
    assert!(completion.result.iter().any(|r| r.name == "good_a"));
    assert!(completion.result.iter().any(|r| r.name == "good_b"));
    let failed = completion.failed_cores();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].core, "poisoned");
    assert!(matches!(
        failed[0].kind,
        CoreOutcomeKind::Failed(CoreFailure::Overflow)
    ));
    assert!(!completion.is_complete());
}

/// Injected budget exhaustion at every limit type terminates the ATPG
/// run with a partial result carrying the matching typed reason.
#[test]
fn injected_budget_exhaustion_terminates_with_typed_partial() {
    let circuit = parse_bench("chaos", BASE_BENCH).expect("valid base");
    let engine = Atpg::new(AtpgOptions::default());

    // Pre-cancelled: nothing runs, partial comes back from setup.
    let budget = RunBudget::unlimited();
    budget.cancel();
    let r = engine.run_budgeted(&circuit, &budget).expect("no error");
    let e = r.exhausted.as_ref().expect("partial");
    assert_eq!(e.reason, ExhaustReason::Cancelled);
    assert_eq!(r.pattern_count(), 0);

    // Expired deadline: must return promptly, not hang.
    let started = Instant::now();
    let budget = RunBudget::unlimited().with_timeout(Duration::ZERO);
    let r = engine.run_budgeted(&circuit, &budget).expect("no error");
    assert!(started.elapsed() < Duration::from_secs(5));
    assert_eq!(
        r.exhausted.as_ref().expect("partial").reason,
        ExhaustReason::Deadline
    );

    // Pattern cap: the banked pattern count respects the cap.
    let budget = RunBudget::unlimited().with_max_patterns(1);
    let r = engine.run_budgeted(&circuit, &budget).expect("no error");
    assert_eq!(
        r.exhausted.as_ref().expect("partial").reason,
        ExhaustReason::Patterns
    );
    assert!(r.pattern_count() <= 1, "{}", r.pattern_count());

    // Zero backtrack pool: PODEM aborts its searches but the run still
    // finishes (random-phase patterns need no backtracking, so this may
    // complete rather than trip — both are legal, panicking is not).
    let budget = RunBudget::unlimited().with_max_backtracks(0);
    let r = engine.run_budgeted(&circuit, &budget).expect("no error");
    assert!(r.pattern_count() < 10_000);
}

/// An unlimited budget must reproduce the plain `run` exactly —
/// the budgeted path cannot perturb the published table numbers.
#[test]
fn unlimited_budget_is_identical_to_plain_run() {
    let circuit = parse_bench("chaos", BASE_BENCH).expect("valid base");
    let engine = Atpg::new(AtpgOptions::default());
    let plain = engine.run(&circuit).expect("plain run");
    let budgeted = engine
        .run_budgeted(&circuit, &RunBudget::unlimited())
        .expect("budgeted run");
    assert!(plain.exhausted.is_none());
    assert!(budgeted.exhausted.is_none());
    assert_eq!(plain.pattern_count(), budgeted.pattern_count());
    assert_eq!(plain.fault_coverage(), budgeted.fault_coverage());
    assert_eq!(plain.stats.detected, budgeted.stats.detected);
}

/// Every corruption operator individually keeps the pipeline panic-free
/// (the sweep draws operators randomly; this leaves no operator to
/// chance).
#[test]
fn every_corruption_operator_is_survivable() {
    for op in ALL_CORRUPTIONS {
        for seed in 0..20u64 {
            let mut rng = ChaosRng::new(seed);
            let source = op.apply(BASE_BENCH, &mut rng);
            match parse_bench("op", &source) {
                Ok(c) => {
                    c.validate().expect("parsed circuits validate");
                }
                Err(e) => assert!(!e.to_string().is_empty(), "{op:?}"),
            }
            let mut rng = ChaosRng::new(seed);
            let source = op.apply(BASE_SOC, &mut rng);
            match parse_soc(&source) {
                Ok(s) => {
                    let _ = analyze_soc_guarded(&s, &TdvOptions::tables_3_4());
                }
                Err(e) => assert!(!e.to_string().is_empty(), "{op:?}"),
            }
        }
    }
}
