//! Acceptance suite for the remote store backend: a `ResultStore` over
//! [`HttpBackend`] speaking to an in-process `modsoc serve --store`
//! daemon must behave observably like one over a local directory — the
//! same corruption taxonomy (server-side damage surfaces as client-side
//! evictions and recompute, never a crash), plus the claim protocol
//! that lets concurrent campaign workers partition units: CAS with one
//! winner under contention, and lease expiry re-offering the units of a
//! killed worker.

use std::sync::Arc;
use std::time::Duration;

use modsoc::analysis::campaign::{
    run_campaign, run_campaign_claimed, CampaignSpec, ClaimOptions, UnitStatus,
};
use modsoc::analysis::experiment::ExperimentOptions;
use modsoc::analysis::remote::HttpBackend;
use modsoc::analysis::serve::{ServeConfig, Server};
use modsoc::analysis::RunBudget;
use modsoc::metrics::json::JsonValue;
use modsoc::metrics::NullSink;
use modsoc::store::backend::ClaimOutcome;
use modsoc::store::sha256::Sha256;
use modsoc::store::{ResultStore, StoreKey};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("modsoc_store_remote_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Start an in-process serve daemon fronting `store_dir`; returns the
/// address, the server's own store handle (for write-count parity
/// checks) and a shutdown closure.
fn start_daemon(
    store_dir: &std::path::Path,
) -> (
    String,
    Arc<ResultStore>,
    impl FnOnce() -> modsoc::metrics::MetricsSnapshot,
) {
    let store = Arc::new(ResultStore::open(store_dir).expect("open server store"));
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        store: Some(Arc::clone(&store)),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));
    (addr, store, move || {
        handle.shutdown();
        join.join().expect("join")
    })
}

fn remote_store(addr: &str) -> ResultStore {
    let backend = HttpBackend::connect(addr, Duration::from_secs(10)).expect("connect");
    ResultStore::with_backend(Arc::new(backend))
}

fn key_of(tag: &str) -> StoreKey {
    let mut h = Sha256::new();
    h.update(tag.as_bytes());
    StoreKey(h.finalize())
}

fn payload(tag: &str) -> JsonValue {
    JsonValue::Object(vec![
        ("tag".to_string(), JsonValue::String(tag.to_string())),
        ("value".to_string(), JsonValue::Number(42.0)),
    ])
}

/// The server-side object file for `key` under `dir`.
fn entry_path(dir: &std::path::Path, key: &StoreKey) -> std::path::PathBuf {
    dir.join("objects").join(format!("{}.json", key.hex()))
}

#[test]
fn remote_roundtrip_is_byte_identical_to_local() {
    let local_dir = temp_dir("parity_local");
    let remote_dir = temp_dir("parity_remote");
    let (addr, _server_store, stop) = start_daemon(&remote_dir);

    let local = ResultStore::open(&local_dir).expect("open local");
    let remote = remote_store(&addr);
    for tag in ["a", "b", "c"] {
        let key = key_of(tag);
        local
            .put(&key, &payload(tag), &NullSink)
            .expect("local put");
        remote
            .put(&key, &payload(tag), &NullSink)
            .expect("remote put");
        // The wire entry lands byte-identical to the local write.
        let on_local = std::fs::read(entry_path(&local_dir, &key)).expect("local bytes");
        let on_remote = std::fs::read(entry_path(&remote_dir, &key)).expect("remote bytes");
        assert_eq!(on_local, on_remote, "{tag}: stored bytes must match");
        // And reads agree.
        assert_eq!(
            local.get(&key, &NullSink),
            remote.get(&key, &NullSink),
            "{tag}"
        );
    }
    assert_eq!(remote.hits(), 3);
    assert_eq!(remote.writes(), 3);
    stop();
}

#[test]
fn server_side_corruption_matches_local_taxonomy() {
    // Each corruption is applied identically to a local store file and
    // to the serve daemon's copy of the same entry; the client-side
    // observables (miss + eviction + entry gone) must match exactly.
    type Corruptor = fn(&mut Vec<u8>);
    let corruptions: &[(&str, Corruptor)] = &[
        ("byte-flip", |b: &mut Vec<u8>| {
            let mid = b.len() / 2;
            b[mid] ^= 0x20;
        }),
        ("truncation", |b: &mut Vec<u8>| {
            b.truncate(b.len() / 2);
        }),
        ("garbage", |b: &mut Vec<u8>| {
            *b = b"not json at all".to_vec();
        }),
        ("emptied", |b: &mut Vec<u8>| {
            b.clear();
        }),
    ];
    let local_dir = temp_dir("corrupt_local");
    let remote_dir = temp_dir("corrupt_remote");
    let (addr, _server_store, stop) = start_daemon(&remote_dir);
    let local = ResultStore::open(&local_dir).expect("open local");
    let remote = remote_store(&addr);

    for (name, corrupt) in corruptions {
        let key = key_of(name);
        local.put(&key, &payload(name), &NullSink).expect("put");
        remote.put(&key, &payload(name), &NullSink).expect("put");
        for dir in [&local_dir, &remote_dir] {
            let path = entry_path(dir, &key);
            let mut bytes = std::fs::read(&path).expect("read entry");
            corrupt(&mut bytes);
            std::fs::write(&path, &bytes).expect("write corruption");
        }
        let evictions_before = (local.evictions(), remote.evictions());
        assert_eq!(local.get(&key, &NullSink), None, "{name}: local miss");
        assert_eq!(remote.get(&key, &NullSink), None, "{name}: remote miss");
        assert_eq!(
            local.evictions(),
            evictions_before.0 + 1,
            "{name}: local eviction"
        );
        assert_eq!(
            remote.evictions(),
            evictions_before.1 + 1,
            "{name}: remote eviction"
        );
        // Damage is gone on both sides; a re-put recomputes cleanly.
        assert!(!entry_path(&local_dir, &key).exists(), "{name}");
        assert!(!entry_path(&remote_dir, &key).exists(), "{name}");
        remote.put(&key, &payload(name), &NullSink).expect("re-put");
        assert!(remote.get(&key, &NullSink).is_some(), "{name}: recomputed");
    }
    stop();
}

#[test]
fn wrong_key_and_wrong_schema_are_evicted_remotely() {
    // Entry contents that parse as JSON but fail envelope validation:
    // stored under key A, claiming key B (or a future schema). The
    // client must evict rather than trust them.
    let remote_dir = temp_dir("envelope");
    let (addr, _server_store, stop) = start_daemon(&remote_dir);
    let remote = remote_store(&addr);
    let key = key_of("envelope");
    remote
        .put(&key, &payload("envelope"), &NullSink)
        .expect("put");
    let path = entry_path(&remote_dir, &key);
    let text = std::fs::read_to_string(&path).expect("read");
    let swapped = text.replace(&key.hex(), &key_of("other").hex());
    assert_ne!(swapped, text, "replacement must hit");
    std::fs::write(&path, swapped).expect("write");
    assert_eq!(remote.get(&key, &NullSink), None, "key mismatch is a miss");
    assert_eq!(remote.evictions(), 1);
    assert!(!path.exists(), "evicted server-side");
    stop();
}

#[test]
fn claim_contention_has_exactly_one_winner() {
    let remote_dir = temp_dir("claim_cas");
    let (addr, _server_store, stop) = start_daemon(&remote_dir);
    let a = remote_store(&addr);
    let b = remote_store(&addr);
    let lease = Duration::from_secs(30);
    let key = key_of("unit").hex();

    let oa = a
        .claim_unit("j", "u1", &key, "worker-a", lease)
        .expect("claim a");
    let ob = b
        .claim_unit("j", "u1", &key, "worker-b", lease)
        .expect("claim b");
    match (&oa, &ob) {
        (ClaimOutcome::Acquired { .. }, ClaimOutcome::Held { owner }) => {
            assert_eq!(owner, "worker-a");
        }
        other => panic!("expected a to win and b to be held, got {other:?}"),
    }
    // Re-claiming one's own live unit renews rather than conflicts.
    assert!(matches!(
        a.claim_unit("j", "u1", &key, "worker-a", lease)
            .expect("renew"),
        ClaimOutcome::Acquired { broke_stale: false }
    ));
    // Release by the loser is refused; release by the winner frees it.
    assert!(matches!(
        b.release_claim("j", "u1", "worker-b").expect("bad release"),
        ClaimOutcome::NotOwner
    ));
    assert!(matches!(
        a.release_claim("j", "u1", "worker-a").expect("release"),
        ClaimOutcome::Released
    ));
    assert!(matches!(
        b.claim_unit("j", "u1", &key, "worker-b", lease)
            .expect("reclaim"),
        ClaimOutcome::Acquired { broke_stale: false }
    ));
    stop();
}

#[test]
fn expired_lease_of_a_killed_worker_is_broken() {
    let remote_dir = temp_dir("claim_lease");
    let (addr, _server_store, stop) = start_daemon(&remote_dir);
    let dead = remote_store(&addr);
    let heir = remote_store(&addr);
    let key = key_of("unit").hex();

    // "Kill" a worker: it claims with a short lease and never renews.
    assert!(matches!(
        dead.claim_unit("j", "u1", &key, "doomed", Duration::from_millis(60))
            .expect("claim"),
        ClaimOutcome::Acquired { .. }
    ));
    // While the lease is live the unit stays held...
    assert!(matches!(
        heir.claim_unit("j", "u1", &key, "heir", Duration::from_millis(60))
            .expect("early"),
        ClaimOutcome::Held { .. }
    ));
    // ...and once it expires, the claim is broken and re-offered.
    std::thread::sleep(Duration::from_millis(200));
    assert!(matches!(
        heir.claim_unit("j", "u1", &key, "heir", Duration::from_millis(60))
            .expect("late"),
        ClaimOutcome::Acquired { broke_stale: true }
    ));
    stop();
}

const SPEC: &str = r#"{
    "schema": 1,
    "name": "remote",
    "units": [
        {"name": "m7", "soc": "mini", "seed": 7},
        {"name": "m9", "soc": "mini", "seed": 9},
        {"name": "m11", "soc": "mini", "seed": 11}
    ]
}"#;

/// Run one claimed worker over the shared spec through its own remote
/// store handle.
fn run_worker(addr: &str, owner: &str) -> modsoc::analysis::CampaignReport {
    let store = Arc::new(remote_store(addr));
    let options = ExperimentOptions::paper_tables_1_2().with_store(Arc::clone(&store));
    let claims = ClaimOptions::new(owner)
        .with_lease(Duration::from_secs(10))
        .with_wait(Duration::from_secs(120));
    run_campaign_claimed(
        &CampaignSpec::from_json(SPEC).expect("spec"),
        &options,
        &RunBudget::unlimited(),
        &store,
        false,
        &claims,
        &NullSink,
    )
    .expect("claimed campaign")
}

#[test]
fn concurrent_workers_partition_units_with_no_duplicate_work() {
    // Baseline: the same spec against a local store, to know how many
    // engine results a full campaign writes.
    let local_dir = temp_dir("dist_local");
    let local = Arc::new(ResultStore::open(&local_dir).expect("open"));
    let spec = CampaignSpec::from_json(SPEC).expect("spec");
    let options = ExperimentOptions::paper_tables_1_2().with_store(Arc::clone(&local));
    let baseline = run_campaign(
        &spec,
        &options,
        &RunBudget::unlimited(),
        &local,
        false,
        &NullSink,
    )
    .expect("baseline");
    assert!(baseline.is_complete());
    let baseline_writes = local.writes();

    // Two workers race the spec through one serve daemon.
    let remote_dir = temp_dir("dist_remote");
    let (addr, server_store, stop) = start_daemon(&remote_dir);
    let (ra, rb) = std::thread::scope(|s| {
        let a = s.spawn(|| run_worker(&addr, "worker-a"));
        let b = s.spawn(|| run_worker(&addr, "worker-b"));
        (a.join().expect("a"), b.join().expect("b"))
    });

    // Every unit resolved on both sides, none failed, and between the
    // two reports each unit was *run* exactly once (the other side
    // skipped it from the shared journal or never saw it free).
    for report in [&ra, &rb] {
        assert!(report.is_complete(), "{report:?}");
    }
    for (i, unit) in spec.units.iter().enumerate() {
        let ran = [&ra, &rb]
            .iter()
            .filter(|r| r.units[i].status == UnitStatus::Complete)
            .count();
        assert!(ran <= 1, "unit '{}' ran on both workers", unit.name);
    }
    // Write-count parity: the shared store saw exactly the single-run
    // number of engine writes — nothing was computed twice.
    assert_eq!(
        server_store.writes(),
        baseline_writes,
        "duplicate engine work reached the shared store"
    );
    // The merged journal is complete: a third worker skips everything.
    let resumed = run_worker(&addr, "worker-c");
    assert_eq!(resumed.count(&UnitStatus::Skipped), spec.units.len());
    assert_eq!(server_store.writes(), baseline_writes, "resume recomputed");
    // Reports carry identical numbers to the local baseline.
    for (i, row) in baseline.units.iter().enumerate() {
        assert_eq!(row.t_mono, resumed.units[i].t_mono, "{}", row.unit);
        assert_eq!(row.tdv_modular, resumed.units[i].tdv_modular);
        assert_eq!(row.tdv_monolithic, resumed.units[i].tdv_monolithic);
    }
    // And the store the daemon leaves behind sweeps clean.
    assert_eq!(server_store.verify_all().expect("verify").1, 0);
    stop();
}

#[test]
fn connect_fails_fast_when_daemon_has_no_store() {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));
    let err = HttpBackend::connect(&addr, Duration::from_secs(5))
        .expect_err("must refuse a storeless daemon");
    assert!(
        err.to_string().contains("no --store"),
        "unhelpful error: {err}"
    );
    handle.shutdown();
    join.join().expect("join");
}
