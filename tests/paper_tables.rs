//! Integration: every published table regenerates through the facade.

use modsoc::analysis::reconstruct::reconstruct_table4;
use modsoc::analysis::report::render_survey;
use modsoc::analysis::{SocTdvAnalysis, TdvOptions};
use modsoc::soc::itc02;
use modsoc::soc::stats::pattern_count_stats;

#[test]
fn table1_soc1_headline() {
    let soc = itc02::soc1();
    let a = SocTdvAnalysis::compute_with_measured_tmono(
        &soc,
        &TdvOptions::tables_1_2(),
        itc02::SOC1_MEASURED_TMONO,
    )
    .expect("analysis");
    assert_eq!(a.modular().total(), 45_183);
    assert_eq!(a.monolithic().total(), 129_816);
    assert_eq!(a.monolithic_optimistic().total(), 51_085);
    assert!((a.reduction_ratio() - 2.87).abs() < 0.01);
    assert!((a.pessimistic_reduction_ratio() - 1.13).abs() < 0.01);
}

#[test]
fn table2_soc2_headline() {
    let soc = itc02::soc2();
    let a = SocTdvAnalysis::compute_with_measured_tmono(
        &soc,
        &TdvOptions::tables_1_2(),
        itc02::SOC2_MEASURED_TMONO,
    )
    .expect("analysis");
    assert_eq!(a.modular().total(), 1_344_585);
    assert_eq!(a.monolithic().total(), 2_986_200);
    assert_eq!(a.monolithic_optimistic().total(), 1_428_320);
    assert!((a.reduction_ratio() - 2.22).abs() < 0.01);
    assert!((a.pessimistic_reduction_ratio() - 1.06).abs() < 0.01);
}

#[test]
fn table3_p34392_bit_exact() {
    let soc = itc02::p34392();
    let a = SocTdvAnalysis::compute(&soc, &TdvOptions::tables_3_4()).expect("analysis");
    assert_eq!(a.modular().total(), itc02::P34392_TDV_MODULAR);
    assert_eq!(a.monolithic_optimistic().total(), 522_738_000);
}

#[test]
fn table4_all_rows_within_tolerance() {
    let opts = TdvOptions::tables_3_4();
    for row in itc02::table4() {
        let soc = if row.name == "p34392" {
            itc02::p34392()
        } else {
            reconstruct_table4(row).expect("reconstruction")
        };
        let a = SocTdvAnalysis::compute(&soc, &opts).expect("analysis");
        let mono = a.monolithic_optimistic().total();
        assert!(
            (mono as f64 - row.tdv_opt_mono as f64).abs() / (row.tdv_opt_mono as f64) < 1e-3,
            "{}: mono {mono} vs {}",
            row.name,
            row.tdv_opt_mono
        );
        // Winner must agree with the paper for every row.
        let ours_modular_wins = a.modular_change_pct() < 0.0;
        let paper_modular_wins = row.modular_pct < 0.0;
        assert_eq!(ours_modular_wins, paper_modular_wins, "{}", row.name);
    }
}

#[test]
fn table4_correlation_negative() {
    let opts = TdvOptions::tables_3_4();
    let mut pairs = Vec::new();
    for row in itc02::table4() {
        let soc = if row.name == "p34392" {
            itc02::p34392()
        } else {
            reconstruct_table4(row).expect("reconstruction")
        };
        let a = SocTdvAnalysis::compute(&soc, &opts).expect("analysis");
        pairs.push((
            pattern_count_stats(&soc).normalized_stdev(),
            a.modular_change_pct(),
        ));
    }
    // Pearson correlation between variation and modular change must be
    // strongly negative (more variation -> more reduction).
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let sxy: f64 = pairs.iter().map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = pairs.iter().map(|(x, _)| (x - mx).powi(2)).sum();
    let syy: f64 = pairs.iter().map(|(_, y)| (y - my).powi(2)).sum();
    let r = sxy / (sxx.sqrt() * syy.sqrt());
    assert!(r < -0.6, "correlation should be strongly negative, got {r}");
}

#[test]
fn survey_renders_all_ten() {
    let opts = TdvOptions::tables_3_4();
    let analyses: Vec<_> = itc02::table4()
        .iter()
        .map(|row| {
            let soc = if row.name == "p34392" {
                itc02::p34392()
            } else {
                reconstruct_table4(row).expect("reconstruction")
            };
            SocTdvAnalysis::compute(&soc, &opts).expect("analysis")
        })
        .collect();
    let text = render_survey(&analyses);
    for row in itc02::table4() {
        assert!(text.contains(row.name), "{} missing from survey", row.name);
    }
}

#[test]
fn figure_1_2_worked_example() {
    use modsoc::soc::{CoreSpec, Soc};
    let mut soc = Soc::new("fig1");
    for (name, ffs, patterns) in [("A", 20, 200), ("B", 10, 300), ("C", 20, 400)] {
        soc.add_core(CoreSpec::leaf(name, 0, 0, 0, ffs, patterns))
            .expect("add");
    }
    let a = SocTdvAnalysis::compute(&soc, &TdvOptions::default()).expect("analysis");
    assert_eq!(a.monolithic_optimistic().stimulus, 20_000);
    assert_eq!(a.modular().stimulus, 15_000);
}
