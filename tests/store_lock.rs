//! Cross-process store contention: two `modsoc` processes sharing one
//! store directory must serialize writes through the advisory locks and
//! merge journal updates instead of losing them.

use std::process::Command;

use modsoc::store::ResultStore;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("modsoc_store_lock_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn campaign_spec() -> &'static str {
    r#"{
  "schema": 1,
  "name": "contention",
  "units": [
    {"name": "u1", "soc": "mini", "seed": 1},
    {"name": "u2", "soc": "mini", "seed": 2},
    {"name": "u3", "soc": "mini", "seed": 3}
  ]
}"#
}

#[test]
fn two_campaign_processes_share_one_store_without_corruption() {
    let dir = temp_dir("two_campaigns");
    let spec = dir.join("spec.json");
    std::fs::write(&spec, campaign_spec()).expect("write spec");
    let store_dir = dir.join("store");

    let spawn = || {
        Command::new(env!("CARGO_BIN_EXE_modsoc"))
            .args([
                "campaign",
                spec.to_str().expect("utf8"),
                "--store",
                store_dir.to_str().expect("utf8"),
            ])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn campaign")
    };
    // Two writers race over the same units, entries and journal.
    let mut a = spawn();
    let mut b = spawn();
    let sa = a.wait().expect("a exits");
    let sb = b.wait().expect("b exits");
    // Either order of completion is fine; both must succeed (exit 0 —
    // each process sees every unit complete, whether it computed the
    // unit itself or found the other's journal entry).
    assert!(sa.success(), "first campaign: {sa}");
    assert!(sb.success(), "second campaign: {sb}");

    // A third run must find everything journaled and skip all units.
    let third = Command::new(env!("CARGO_BIN_EXE_modsoc"))
        .args([
            "campaign",
            spec.to_str().expect("utf8"),
            "--store",
            store_dir.to_str().expect("utf8"),
        ])
        .output()
        .expect("third run");
    assert!(third.status.success(), "{third:?}");
    let stdout = String::from_utf8_lossy(&third.stdout);
    for unit in ["u1", "u2", "u3"] {
        assert!(stdout.contains(unit), "unit {unit} missing:\n{stdout}");
    }
    assert_eq!(
        stdout.matches("skipped").count(),
        3,
        "all three units must resume from the journal:\n{stdout}"
    );

    // No torn objects, no leaked locks.
    let store = ResultStore::open(&store_dir).expect("reopen");
    let (valid, corrupt) = store.verify_all().expect("sweep");
    assert_eq!(corrupt, 0, "{valid} valid, {corrupt} corrupt");
    assert!(valid > 0, "the campaigns must have written entries");
    let locks: Vec<_> = std::fs::read_dir(store_dir.join("locks"))
        .expect("locks dir")
        .flatten()
        .collect();
    assert!(
        locks.is_empty(),
        "locks must be released after clean exits: {locks:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_and_sidecar_campaign_share_one_store() {
    use modsoc::analysis::serve::http_request;
    use std::io::{BufRead, BufReader};
    use std::time::Duration;

    let dir = temp_dir("daemon_sidecar");
    let store_dir = dir.join("store");
    let spec = dir.join("spec.json");
    std::fs::write(&spec, campaign_spec()).expect("write spec");

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_modsoc"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--store",
            store_dir.to_str().expect("utf8"),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn serve");
    let mut line = String::new();
    BufReader::new(daemon.stdout.take().expect("stdout"))
        .read_line(&mut line)
        .expect("listen line");
    let addr = line
        .trim()
        .rsplit("http://")
        .next()
        .expect("address")
        .to_string();

    // The sidecar campaign writes units u1..u3 while the daemon serves
    // overlapping units (same seeds, so the same content keys) — every
    // entry write for a shared key goes through the same advisory lock.
    let mut campaign = Command::new(env!("CARGO_BIN_EXE_modsoc"))
        .args([
            "campaign",
            spec.to_str().expect("utf8"),
            "--store",
            store_dir.to_str().expect("utf8"),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn campaign");
    for seed in [1u64, 2, 3] {
        let body = format!("{{\"soc\": \"mini\", \"seed\": {seed}, \"timeout_ms\": 20000}}");
        let resp = http_request(
            &addr,
            "POST",
            "/experiment",
            Some(&body),
            Duration::from_secs(60),
        )
        .expect("served experiment");
        assert_eq!(resp.status, 200, "{}", resp.body_text());
    }
    assert!(campaign.wait().expect("campaign exits").success());
    let shutdown =
        http_request(&addr, "POST", "/shutdown", None, Duration::from_secs(10)).expect("shutdown");
    assert_eq!(shutdown.status, 200);
    assert!(daemon.wait().expect("daemon exits").success());

    let store = ResultStore::open(&store_dir).expect("reopen");
    let (valid, corrupt) = store.verify_all().expect("sweep");
    assert_eq!(corrupt, 0, "{valid} valid, {corrupt} corrupt");
    assert!(valid > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
