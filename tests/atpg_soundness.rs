//! Integration: ATPG soundness on randomly generated circuits.
//!
//! Property: every fault the engine reports as detected really is
//! detected by the shipped (filled) pattern set under independent
//! simulation, and every pattern set is deterministic per seed.

use proptest::prelude::*;

use modsoc::atpg::fault::FaultStatus;
use modsoc::atpg::fault_sim::FaultSimulator;
use modsoc::atpg::{Atpg, AtpgOptions};
use modsoc::circuitgen::{generate, CoreProfile};

proptest! {
    // ATPG per case is milliseconds on these sizes; keep the case count
    // modest so the suite stays fast in debug builds.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn detected_faults_are_really_detected(
        seed in 0u64..1000,
        inputs in 4usize..12,
        outputs in 2usize..6,
        ffs in 0usize..8,
    ) {
        let profile = CoreProfile::new("rand", inputs, outputs, ffs).with_seed(seed);
        let circuit = generate(&profile).expect("generates");
        let result = Atpg::new(AtpgOptions::default()).run(&circuit).expect("atpg");
        let model = match &result.test_model {
            Some(m) => m.circuit.clone(),
            None => circuit.clone(),
        };
        let filled = result.patterns.fill_all(result.fill);
        let mut fsim = FaultSimulator::new(&model).expect("fsim");
        let faults: Vec<_> = result.fault_statuses.iter().map(|(f, _)| *f).collect();
        let mut detected = vec![false; faults.len()];
        for chunk in filled.chunks(64) {
            for (i, m) in fsim.detection_masks(chunk, &faults).expect("sim").iter().enumerate() {
                if *m != 0 {
                    detected[i] = true;
                }
            }
        }
        for (i, (fault, status)) in result.fault_statuses.iter().enumerate() {
            if *status == FaultStatus::Detected {
                prop_assert!(
                    detected[i],
                    "fault {} claimed detected but is not",
                    fault.describe(&model)
                );
            }
            if *status == FaultStatus::Redundant {
                prop_assert!(
                    !detected[i],
                    "fault {} claimed redundant but a pattern detects it",
                    fault.describe(&model)
                );
            }
        }
    }

    #[test]
    fn coverage_is_high_on_generated_circuits(seed in 0u64..1000) {
        let profile = CoreProfile::new("cov", 10, 4, 6).with_seed(seed);
        let circuit = generate(&profile).expect("generates");
        let result = Atpg::new(AtpgOptions::default()).run(&circuit).expect("atpg");
        prop_assert!(
            result.fault_coverage() > 0.9,
            "coverage {} too low",
            result.fault_coverage()
        );
        prop_assert_eq!(result.stats.aborted, 0, "no aborts expected at this size");
    }
}
