//! Cross-crate property-based tests (proptest).

use proptest::prelude::*;

use modsoc::analysis::tdv::{benefit_exact, modular_tdv, monolithic_tdv, penalty, TdvOptions};
use modsoc::analysis::SocTdvAnalysis;
use modsoc::atpg::{Bit, TestCube};
use modsoc::soc::format::{parse_soc, write_soc};
use modsoc::soc::{CoreSpec, Soc};

fn arb_core(name: String) -> impl Strategy<Value = CoreSpec> {
    (0u64..200, 0u64..200, 0u64..20, 0u64..5000, 1u64..10_000)
        .prop_map(move |(i, o, b, s, t)| CoreSpec::leaf(name.clone(), i, o, b, s, t))
}

fn arb_soc() -> impl Strategy<Value = Soc> {
    // 1..8 leaf cores under one top.
    (1usize..8)
        .prop_flat_map(|n| {
            let cores: Vec<_> = (0..n).map(|i| arb_core(format!("c{i}"))).collect();
            (cores, 0u64..100, 0u64..100, 0u64..10, 0u64..50)
        })
        .prop_map(|(cores, ti, to, tb, tt)| {
            let mut soc = Soc::new("prop");
            let mut children = Vec::new();
            for c in cores {
                children.push(soc.add_core(c).expect("leaf adds"));
            }
            soc.add_core(CoreSpec::parent("top", ti, to, tb, 0, tt, children))
                .expect("top adds");
            soc
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn eq6_balances_exactly_for_any_soc(soc in arb_soc()) {
        for opts in [TdvOptions::tables_1_2(), TdvOptions::tables_3_4()] {
            let t_mono = soc.max_core_patterns();
            let mono = monolithic_tdv(&soc, t_mono).total();
            let pen = penalty(&soc, &opts);
            let ben = benefit_exact(&soc, t_mono, &opts);
            let modular = modular_tdv(&soc, &opts).total();
            prop_assert_eq!(mono + pen - ben, modular);
        }
    }

    #[test]
    fn volumes_scale_linearly_with_tmono(soc in arb_soc(), k in 1u64..5) {
        let t = soc.max_core_patterns();
        let v1 = monolithic_tdv(&soc, t).total();
        let vk = monolithic_tdv(&soc, t * k).total();
        prop_assert_eq!(vk, v1 * k);
    }

    #[test]
    fn modular_tdv_at_least_scan_payload(soc in arb_soc()) {
        // Every pattern must at least carry its core's scan bits.
        let opts = TdvOptions::tables_1_2();
        let floor: u64 = soc.iter().map(|(_, c)| c.patterns * 2 * c.scan_cells).sum();
        prop_assert!(modular_tdv(&soc, &opts).total() >= floor);
    }

    #[test]
    fn include_policy_never_cheaper(soc in arb_soc()) {
        // Charging chip pins can only add bits.
        let ex = modular_tdv(&soc, &TdvOptions::tables_1_2()).total();
        let inc = modular_tdv(&soc, &TdvOptions::tables_3_4()).total();
        prop_assert!(inc >= ex);
    }

    #[test]
    fn analysis_matches_standalone_equations(soc in arb_soc()) {
        let opts = TdvOptions::tables_3_4();
        let a = SocTdvAnalysis::compute(&soc, &opts).expect("analysis");
        prop_assert_eq!(a.modular().total(), modular_tdv(&soc, &opts).total());
        prop_assert_eq!(a.penalty(), penalty(&soc, &opts));
        let row_sum: u64 = a.rows().iter().map(|r| r.volume.total()).sum();
        prop_assert_eq!(row_sum, a.modular().total());
    }

    #[test]
    fn soc_format_round_trips(soc in arb_soc()) {
        let text = write_soc(&soc);
        let back = parse_soc(&text).expect("parses");
        prop_assert_eq!(back.core_count(), soc.core_count());
        for (_, c) in soc.iter() {
            let id = back.find(&c.name).expect("core preserved");
            let c2 = back.core(id);
            prop_assert_eq!(
                (c.inputs, c.outputs, c.bidirs, c.scan_cells, c.patterns),
                (c2.inputs, c2.outputs, c2.bidirs, c2.scan_cells, c2.patterns)
            );
        }
    }

    #[test]
    fn cube_merge_is_commutative_and_preserves_bits(
        bits_a in proptest::collection::vec(0u8..3, 1..40),
        bits_b in proptest::collection::vec(0u8..3, 1..40),
    ) {
        let n = bits_a.len().min(bits_b.len());
        let to_cube = |bits: &[u8]| {
            TestCube::from_bits(
                bits.iter()
                    .take(n)
                    .map(|&b| match b {
                        0 => Bit::Zero,
                        1 => Bit::One,
                        _ => Bit::X,
                    })
                    .collect(),
            )
        };
        let a = to_cube(&bits_a);
        let b = to_cube(&bits_b);
        prop_assert_eq!(a.compatible(&b), b.compatible(&a));
        if a.compatible(&b) {
            let m1 = a.merged(&b);
            let m2 = b.merged(&a);
            prop_assert_eq!(&m1, &m2);
            // Merging never unspecifies a bit.
            for i in 0..n {
                if a.bit(i) != Bit::X {
                    prop_assert_eq!(m1.bit(i), a.bit(i));
                }
                if b.bit(i) != Bit::X {
                    prop_assert_eq!(m1.bit(i), b.bit(i));
                }
            }
        }
    }
}

proptest! {
    // Full guarded experiments per case: keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The parallel determinism contract end to end: the guarded
    /// experiment produces an identical report at `jobs=1` and `jobs=4`
    /// — same per-core outcome table, pattern counts and TDV rows — for
    /// any netlist seed, including when injected per-core panics knock
    /// cores out.
    #[test]
    fn guarded_experiment_is_jobs_invariant(seed in 1u64..64, panic_mask in 0u8..4) {
        use modsoc::analysis::experiment::{
            run_soc_experiment_guarded_with, ExperimentOptions,
        };
        use modsoc::analysis::{AnalysisError, RunBudget};
        use modsoc::atpg::{Atpg, AtpgOptions};
        use modsoc::circuitgen::soc::mini_soc;

        let netlist = mini_soc(seed).expect("builds");
        let engine = Atpg::new(AtpgOptions::default());
        let run = |jobs: usize| {
            let options = ExperimentOptions::paper_tables_1_2().with_jobs(jobs);
            run_soc_experiment_guarded_with(
                &netlist,
                &options,
                &RunBudget::unlimited(),
                |i, circuit| {
                    if panic_mask & (1 << i) != 0 {
                        panic!("injected panic in core {i}");
                    }
                    engine
                        .run_budgeted(circuit, &RunBudget::unlimited())
                        .map_err(AnalysisError::from)
                },
            )
        };
        let serial = run(1);
        let parallel = run(4);
        match (serial, parallel) {
            (Ok(s), Ok(p)) => {
                prop_assert_eq!(&p.per_core_outcomes, &s.per_core_outcomes);
                prop_assert_eq!(p.exhausted, s.exhausted);
                prop_assert_eq!(p.result.t_mono, s.result.t_mono);
                prop_assert_eq!(p.result.eq2_strict, s.result.eq2_strict);
                let rows = |e: &modsoc::analysis::experiment::SocExperiment| {
                    e.cores
                        .iter()
                        .map(|c| (c.name.clone(), c.patterns, c.stats.detected))
                        .collect::<Vec<_>>()
                };
                prop_assert_eq!(rows(&p.result), rows(&s.result));
                prop_assert_eq!(
                    p.result.analysis.modular().total(),
                    s.result.analysis.modular().total()
                );
                prop_assert_eq!(
                    p.result.analysis.reduction_ratio(),
                    s.result.analysis.reduction_ratio()
                );
            }
            // Every core panicked: both job counts must agree on the
            // terminal error too.
            (Err(se), Err(pe)) => prop_assert_eq!(pe.to_string(), se.to_string()),
            (s, p) => prop_assert!(false, "divergent termination: {s:?} vs {p:?}"),
        }
    }
}
