//! Integration tests for the `modsoc` CLI binary.

use std::process::Command;

fn modsoc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_modsoc"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = modsoc(&[]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn unknown_subcommand_rejected() {
    let out = modsoc(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn demo_soc1_prints_paper_numbers() {
    let out = modsoc(&["demo", "soc1"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("45,183"), "{text}");
    assert!(text.contains("129,816"));
}

#[test]
fn demo_table4_prints_all_socs() {
    let out = modsoc(&["demo", "table4"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for soc in ["d695", "g12710", "a586710", "p34392"] {
        assert!(text.contains(soc), "{soc} missing");
    }
}

#[test]
fn generate_atpg_analyze_pipeline() {
    let dir = std::env::temp_dir().join(format!("modsoc_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let bench = dir.join("core.bench");
    let patterns = dir.join("core.pat");
    let verilog = dir.join("core.v");

    // generate
    let out = modsoc(&[
        "generate",
        "--inputs", "6",
        "--outputs", "3",
        "--scan", "4",
        "--seed", "11",
        "--bench-out", bench.to_str().expect("utf8 path"),
        "--verilog-out", verilog.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(bench.exists() && verilog.exists());

    // atpg over the generated bench
    let out = modsoc(&[
        "atpg",
        bench.to_str().expect("utf8 path"),
        "--dynamic",
        "--patterns-out", patterns.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fault coverage"), "{text}");
    let pat_text = std::fs::read_to_string(&patterns).expect("patterns written");
    assert!(!pat_text.trim().is_empty());
    // 6 PIs + 4 scan cells = width 10 lines.
    assert!(pat_text.lines().all(|l| l.len() == 10), "{pat_text}");

    // cones over the same bench
    let out = modsoc(&["cones", bench.to_str().expect("utf8 path")]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("cones"));

    // analyze a .soc file
    let soc_path = dir.join("t.soc");
    std::fs::write(
        &soc_path,
        "soc demo\ncore top i=8 o=4 s=0 t=2 children=a\ncore a i=4 o=2 s=16 t=40\n",
    )
    .expect("write soc");
    let out = modsoc(&["analyze", soc_path.to_str().expect("utf8 path"), "--reuse", "0.5"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("modular change"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_rejects_bad_flags() {
    let out = modsoc(&["analyze", "/nonexistent.soc"]);
    assert!(!out.status.success());
    let out = modsoc(&["atpg", "/nonexistent.bench"]);
    assert!(!out.status.success());
}
