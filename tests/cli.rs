//! Integration tests for the `modsoc` CLI binary.

use std::process::Command;

fn modsoc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_modsoc"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = modsoc(&[]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn unknown_subcommand_rejected() {
    let out = modsoc(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn demo_soc1_prints_paper_numbers() {
    let out = modsoc(&["demo", "soc1"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("45,183"), "{text}");
    assert!(text.contains("129,816"));
}

#[test]
fn demo_table4_prints_all_socs() {
    let out = modsoc(&["demo", "table4"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for soc in ["d695", "g12710", "a586710", "p34392"] {
        assert!(text.contains(soc), "{soc} missing");
    }
}

#[test]
fn tam_packs_soc2_with_ceiling_and_json() {
    let dir = std::env::temp_dir().join(format!("modsoc_tam_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let json = dir.join("tam.json");
    let out = modsoc(&[
        "tam",
        "soc2",
        "--width",
        "16",
        "--power-ceiling",
        "4000",
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("soc2"), "{text}");
    assert!(text.contains("constrained"), "{text}");
    let doc = std::fs::read_to_string(&json).expect("json written");
    assert!(doc.contains("\"pack_time\""), "{doc}");
    assert!(doc.contains("\"constrained_time\""), "{doc}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tam_rejects_unknown_soc_and_zero_width() {
    let out = modsoc(&["tam", "nosuchsoc"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown soc"));
    let out = modsoc(&["tam", "soc1", "--width", "0"]);
    assert!(!out.status.success());
}

#[test]
fn generate_atpg_analyze_pipeline() {
    let dir = std::env::temp_dir().join(format!("modsoc_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let bench = dir.join("core.bench");
    let patterns = dir.join("core.pat");
    let verilog = dir.join("core.v");

    // generate
    let out = modsoc(&[
        "generate",
        "--inputs",
        "6",
        "--outputs",
        "3",
        "--scan",
        "4",
        "--seed",
        "11",
        "--bench-out",
        bench.to_str().expect("utf8 path"),
        "--verilog-out",
        verilog.to_str().expect("utf8 path"),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(bench.exists() && verilog.exists());

    // atpg over the generated bench
    let out = modsoc(&[
        "atpg",
        bench.to_str().expect("utf8 path"),
        "--dynamic",
        "--patterns-out",
        patterns.to_str().expect("utf8 path"),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fault coverage"), "{text}");
    let pat_text = std::fs::read_to_string(&patterns).expect("patterns written");
    assert!(!pat_text.trim().is_empty());
    // 6 PIs + 4 scan cells = width 10 lines.
    assert!(pat_text.lines().all(|l| l.len() == 10), "{pat_text}");

    // cones over the same bench
    let out = modsoc(&["cones", bench.to_str().expect("utf8 path")]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("cones"));

    // analyze a .soc file
    let soc_path = dir.join("t.soc");
    std::fs::write(
        &soc_path,
        "soc demo\ncore top i=8 o=4 s=0 t=2 children=a\ncore a i=4 o=2 s=16 t=40\n",
    )
    .expect("write soc");
    let out = modsoc(&[
        "analyze",
        soc_path.to_str().expect("utf8 path"),
        "--reuse",
        "0.5",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("modular change"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_rejects_bad_flags() {
    let out = modsoc(&["analyze", "/nonexistent.soc"]);
    assert!(!out.status.success());
    let out = modsoc(&["atpg", "/nonexistent.bench"]);
    assert!(!out.status.success());
}

/// Write a small generated bench into a fresh temp dir; returns
/// `(dir, bench_path)`.
fn generated_bench(tag: &str) -> (std::path::PathBuf, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("modsoc_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let bench = dir.join("core.bench");
    let out = modsoc(&[
        "generate",
        "--inputs",
        "8",
        "--outputs",
        "4",
        "--scan",
        "6",
        "--seed",
        "7",
        "--bench-out",
        bench.to_str().expect("utf8 path"),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (dir, bench)
}

#[test]
fn atpg_timeout_zero_is_immediate_partial_with_exit_2() {
    let (dir, bench) = generated_bench("t0");
    let started = std::time::Instant::now();
    let out = modsoc(&[
        "atpg",
        bench.to_str().expect("utf8 path"),
        "--timeout-ms",
        "0",
    ]);
    // The run must come back essentially immediately (allow generous
    // slack for process startup on a loaded machine).
    assert!(started.elapsed() < std::time::Duration::from_secs(10));
    assert_eq!(out.status.code(), Some(2), "partial exit code");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("partial"), "{err}");
    assert!(err.contains("deadline"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn atpg_pattern_cap_returns_partial_with_exit_2() {
    let (dir, bench) = generated_bench("cap");
    let out = modsoc(&[
        "atpg",
        bench.to_str().expect("utf8 path"),
        "--max-patterns",
        "1",
    ]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("pattern cap"));
    // The uncapped run over the same bench completes with exit 0.
    let out = modsoc(&["atpg", bench.to_str().expect("utf8 path")]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_poisoned_core_errors_strict_but_degrades_with_keep_going() {
    let dir = std::env::temp_dir().join(format!("modsoc_cli_kg_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let soc_path = dir.join("poisoned.soc");
    std::fs::write(
        &soc_path,
        "soc mixed\n\
         core good_a i=4 o=3 s=20 t=100\n\
         core poisoned i=1 o=1 s=18446744073709551615 t=18446744073709551615\n\
         core good_b i=2 o=2 s=10 t=50\n",
    )
    .expect("write soc");
    let path = soc_path.to_str().expect("utf8 path");

    // Strict mode: hard error, exit 1.
    let out = modsoc(&["analyze", path]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("overflow"), "{err}");
    assert!(err.contains("--keep-going"), "{err}");

    // Degraded mode: healthy cores still get rows, the poisoned core a
    // typed FAILED outcome, exit 2.
    let out = modsoc(&["analyze", path, "--keep-going"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("good_a"), "{text}");
    assert!(text.contains("good_b"), "{text}");
    assert!(text.contains("FAILED"), "{text}");
    assert!(text.contains("overflow"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_keep_going_on_healthy_soc_exits_0() {
    let dir = std::env::temp_dir().join(format!("modsoc_cli_kg0_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let soc_path = dir.join("ok.soc");
    std::fs::write(
        &soc_path,
        "soc demo\ncore top i=8 o=4 s=0 t=2 children=a\ncore a i=4 o=2 s=16 t=40\n",
    )
    .expect("write soc");
    let out = modsoc(&[
        "analyze",
        soc_path.to_str().expect("utf8 path"),
        "--keep-going",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ok"), "{text}");
    assert!(text.contains("modular change"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_budget_flag_values_are_errors() {
    let (dir, bench) = generated_bench("badflag");
    let out = modsoc(&[
        "atpg",
        bench.to_str().expect("utf8 path"),
        "--timeout-ms",
        "never",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--timeout-ms"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_and_dangling_flags_are_errors() {
    let (dir, bench) = generated_bench("strictflags");
    let path = bench.to_str().expect("utf8 path");

    // A typo'd flag must not silently run unbudgeted.
    let out = modsoc(&["atpg", path, "--frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--frobnicate"));

    // A value flag with no value is an error, not a no-op.
    let out = modsoc(&["atpg", path, "--timeout-ms"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires a value"));

    // Same when the "value" is actually the next flag.
    let out = modsoc(&["atpg", path, "--timeout-ms", "--dynamic"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires a value"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn experiment_mini_is_jobs_invariant_byte_for_byte() {
    let run = |jobs: &str| {
        let out = modsoc(&["experiment", "mini", "--skip-monolithic", "--jobs", jobs]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "jobs={jobs}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let serial = run("1");
    assert_eq!(serial, run("4"), "stdout must be identical at any --jobs");
    assert_eq!(serial, run("0"));
    let text = String::from_utf8_lossy(&serial);
    assert!(text.contains("coreA"), "{text}");
    assert!(text.contains("monolithic phase skipped"), "{text}");
}

#[test]
fn experiment_budget_trip_exits_2_with_outcome_table() {
    let out = modsoc(&["experiment", "mini", "--max-patterns", "2", "--fail-fast"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("partial"), "{text}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("partial result"));
}

#[test]
fn experiment_rejects_unknown_target_and_bad_jobs() {
    let out = modsoc(&["experiment", "maxi"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("mini|soc1|soc2"));

    let out = modsoc(&["experiment", "mini", "--jobs", "many"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs"));
}

/// Strip the volatile lines of a metrics report — wall times (`*_ms`),
/// the single-line `sched` objects, the `jobs` field, and the store
/// traffic counters (`store_*`, which depend on cache warmth) — exactly
/// like the shell-level determinism gate in ci.sh does with grep.
fn volatile_filtered(report: &str) -> String {
    report
        .lines()
        .filter(|l| {
            !(l.contains("_ms\":")
                || l.contains("\"sched\": ")
                || l.contains("\"jobs\": ")
                || l.contains("\"store_"))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn experiment_metrics_report_is_valid_json_and_jobs_invariant() {
    use modsoc::analysis::metrics::{Counter, RunMetrics};
    let dir = std::env::temp_dir().join(format!("modsoc_cli_metrics_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let run = |jobs: &str, file: &str| {
        let path = dir.join(file);
        let out = modsoc(&[
            "experiment",
            "mini",
            "--jobs",
            jobs,
            "--metrics",
            path.to_str().expect("utf8 path"),
        ]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "jobs={jobs}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(String::from_utf8_lossy(&out.stdout).contains("wrote metrics"));
        std::fs::read_to_string(&path).expect("metrics file written")
    };
    let m1 = run("1", "m1.json");
    let m4 = run("4", "m4.json");

    // The report parses with the workspace's own JSON parser and carries
    // real engine observations.
    let parsed = RunMetrics::from_json(&m1).expect("valid metrics JSON");
    assert_eq!(parsed.command, "experiment");
    assert_eq!(parsed.target, "MiniSOC");
    assert!(parsed.totals.counter(Counter::PatternsFinal) > 0);
    assert!(parsed.totals.counter(Counter::PodemCalls) > 0);
    assert_eq!(parsed.cores.last().expect("cores").core, "<monolithic>");
    assert!(!m1.contains("NaN") && !m1.contains("inf"), "{m1}");

    // Deterministic sections are byte-identical at --jobs 1 vs 4, both
    // through the shell-style line filter and the typed comparison.
    assert_eq!(volatile_filtered(&m1), volatile_filtered(&m4));
    let parsed4 = RunMetrics::from_json(&m4).expect("valid metrics JSON");
    assert!(parsed.deterministic_eq(&parsed4));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_keep_going_partial_failure_still_writes_metrics() {
    use modsoc::analysis::metrics::RunMetrics;
    let dir = std::env::temp_dir().join(format!("modsoc_cli_metkg_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let soc_path = dir.join("poisoned.soc");
    std::fs::write(
        &soc_path,
        "soc mixed\n\
         core good_a i=4 o=3 s=20 t=100\n\
         core poisoned i=1 o=1 s=18446744073709551615 t=18446744073709551615\n",
    )
    .expect("write soc");
    let metrics_path = dir.join("m.json");
    let out = modsoc(&[
        "analyze",
        soc_path.to_str().expect("utf8 path"),
        "--keep-going",
        "--metrics",
        metrics_path.to_str().expect("utf8 path"),
    ]);
    // Degraded run: exit 2, but the metrics report is still written and
    // records the per-core outcomes, failure included.
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&metrics_path).expect("metrics written on partial run");
    let parsed = RunMetrics::from_json(&text).expect("valid metrics JSON");
    assert_eq!(parsed.command, "analyze");
    let outcomes: Vec<(&str, &str)> = parsed
        .cores
        .iter()
        .map(|c| (c.core.as_str(), c.outcome.as_str()))
        .collect();
    assert!(outcomes.contains(&("good_a", "ok")), "{outcomes:?}");
    assert!(outcomes.contains(&("poisoned", "FAILED")), "{outcomes:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn experiment_budget_trip_on_monolithic_only_exits_2() {
    // mini's cores stay under a 70-pattern cap end to end, but the
    // flattened monolithic run does not: the budget trips only in the
    // "<monolithic>" pseudo-core, and that alone must make the run
    // partial (exit 2) while every real core still reports ok.
    let out = modsoc(&["experiment", "mini", "--max-patterns", "70"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Only the outcome table (after its "core ... outcome" header) has
    // per-core ok/partial labels; the TDV table above it also starts
    // rows with core names.
    let outcome_table: Vec<&str> = text
        .lines()
        .skip_while(|l| !(l.starts_with("core") && l.contains("outcome")))
        .collect();
    assert!(!outcome_table.is_empty(), "{text}");
    for line in &outcome_table {
        if line.starts_with("coreA") || line.starts_with("coreB") {
            assert!(line.contains("ok"), "core rows must be complete: {line}");
        }
        if line.starts_with("<monolithic>") {
            assert!(line.contains("partial"), "monolithic must trip: {line}");
        }
    }
    assert!(text.contains("<monolithic>"), "{text}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("partial result"));
}

#[test]
fn version_flag_prints_the_crate_version() {
    for flag in ["--version", "-V"] {
        let out = modsoc(&[flag]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert_eq!(text.trim(), concat!("modsoc ", env!("CARGO_PKG_VERSION")));
    }
}

#[test]
fn experiment_store_warm_run_is_byte_identical_with_cache_hits() {
    let dir = std::env::temp_dir().join(format!("modsoc_cli_store_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = dir.join("store");
    let run = |jobs: &str| {
        let out = modsoc(&[
            "experiment",
            "mini",
            "--jobs",
            jobs,
            "--store",
            store.to_str().expect("utf8 path"),
        ]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (out.stdout, String::from_utf8_lossy(&out.stderr).to_string())
    };
    let (cold_stdout, cold_stderr) = run("1");
    // Cold: 2 cores + monolithic, all computed and written.
    assert!(
        cold_stderr.contains("store: 0 hits, 3 misses, 3 writes"),
        "{cold_stderr}"
    );
    // Warm runs are byte-identical on stdout at any --jobs, with one
    // cache hit per engine run reported on stderr.
    for jobs in ["1", "4"] {
        let (warm_stdout, warm_stderr) = run(jobs);
        assert_eq!(warm_stdout, cold_stdout, "jobs={jobs}");
        assert!(
            warm_stderr.contains("store: 3 hits, 0 misses, 0 writes"),
            "{warm_stderr}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn campaign_runs_then_resumes_by_skipping_journaled_units() {
    let dir = std::env::temp_dir().join(format!("modsoc_cli_campaign_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    let spec = dir.join("spec.json");
    std::fs::write(
        &spec,
        r#"{"schema":1,"name":"cli","units":[
            {"name":"m7","soc":"mini","seed":7},
            {"name":"m9","soc":"mini","seed":9}
        ]}"#,
    )
    .expect("write spec");
    let store = dir.join("store");
    let run = || {
        let out = modsoc(&[
            "campaign",
            spec.to_str().expect("utf8 path"),
            "--store",
            store.to_str().expect("utf8 path"),
        ]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let first = run();
    assert!(first.contains("campaign cli (2 units)"), "{first}");
    assert_eq!(first.matches(" ok ").count(), 2, "{first}");
    let second = run();
    assert_eq!(second.matches("skipped").count(), 2, "{second}");
    // Skipped rows reprint the journaled numbers: the reports agree
    // apart from the status column.
    let normalized = |report: &str| {
        report
            .lines()
            .map(|l| {
                let l = l.split_whitespace().collect::<Vec<_>>().join(" ");
                l.replace(" ok ", " * ").replace(" skipped ", " * ")
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(normalized(&first), normalized(&second));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn campaign_without_store_is_an_error() {
    let dir = std::env::temp_dir().join(format!("modsoc_cli_campns_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let spec = dir.join("spec.json");
    std::fs::write(
        &spec,
        r#"{"schema":1,"name":"x","units":[{"name":"m","soc":"mini"}]}"#,
    )
    .expect("write spec");
    let out = modsoc(&["campaign", spec.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--store"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_soc1_fixture_reproduces_table_1() {
    let out = modsoc(&[
        "analyze",
        "testdata/soc1.soc",
        "--exclude-chip-pins",
        "--measured-tmono",
        "216",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("45,183"), "{text}");
    assert!(text.contains("129,816"), "{text}");
}

#[test]
fn index_summarizes_soc_files() {
    let out = modsoc(&["index", "testdata/soc2.soc"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cores"), "{text}");
    assert!(text.contains("scan cells"), "{text}");
}

#[test]
fn analyze_keep_going_output_is_jobs_invariant() {
    let dir = std::env::temp_dir().join(format!("modsoc_cli_jobs_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let soc_path = dir.join("inv.soc");
    std::fs::write(
        &soc_path,
        "soc demo\ncore top i=8 o=4 s=0 t=2 children=a,b\ncore a i=4 o=2 s=16 t=40\ncore b i=3 o=3 s=8 t=20\n",
    )
    .expect("write soc");
    let path = soc_path.to_str().expect("utf8 path");
    let run = |jobs: &str| {
        let out = modsoc(&["analyze", path, "--keep-going", "--jobs", jobs]);
        assert_eq!(out.status.code(), Some(0));
        out.stdout
    };
    assert_eq!(run("1"), run("4"));
    std::fs::remove_dir_all(&dir).ok();
}
