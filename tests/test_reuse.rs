//! Integration: the test-reuse property that modular SOC testing rests
//! on, demonstrated at netlist level.
//!
//! The paper's premise is that a wrapped core's stand-alone test
//! patterns stay valid once the core is embedded — its wrapper isolates
//! it from its surroundings. Here we prove it on real netlists: embed
//! the wrapped cores in an SOC (`flatten_wrapped`), scan in a core's
//! stand-alone pattern plus *arbitrary junk* everywhere else, and check
//! the core's internal and output-cell captures match the stand-alone
//! run bit for bit.

use modsoc::circuitgen::soc::mini_soc;
use modsoc::netlist::scan_chain::{ScanChains, ScanSimulator};
use modsoc::netlist::wrapper::wrap_circuit;
use modsoc::netlist::{Circuit, NodeId};

/// Capture values of the named flip-flops after applying one pattern
/// with all primary inputs at `pi_value` and the scan state given by
/// `state_of` (a name→value map).
fn capture_by_name(
    circuit: &Circuit,
    pi_value: bool,
    state_of: &dyn Fn(&str) -> bool,
) -> std::collections::HashMap<String, bool> {
    let chains = ScanChains::balanced(circuit, 1).expect("chains");
    let mut sim = ScanSimulator::new(circuit, &chains).expect("sim");
    let scan_in: Vec<bool> = chains.chains()[0]
        .iter()
        .map(|&ff| state_of(&circuit.node(ff).name))
        .collect();
    let pis = vec![pi_value; circuit.input_count()];
    let response = sim.apply_pattern(&pis, &[scan_in]).expect("applies");
    chains.chains()[0]
        .iter()
        .zip(&response.captured[0])
        .map(|(&ff, &v)| (circuit.node(ff).name.clone(), v))
        .collect()
}

#[test]
fn wrapped_core_captures_are_environment_independent() {
    let soc = mini_soc(11).expect("builds");
    let embedded = soc.flatten_wrapped().expect("flattens with wrappers");
    let standalone = wrap_circuit(&soc.cores()[0]).expect("wraps");
    let input_cell_names: std::collections::HashSet<String> = standalone
        .input_cells
        .iter()
        .map(|&id| standalone.circuit.node(id).name.clone())
        .collect();

    // A deterministic pseudo-random scan state for core 0's cells.
    let core0_state = |name: &str| -> bool {
        name.bytes()
            .fold(0u32, |a, b| a.wrapping_mul(31).wrapping_add(b.into()))
            % 3
            == 0
    };

    // Stand-alone: core 0 wrapped, ports at 0.
    let alone = capture_by_name(&standalone.circuit, false, &core0_state);

    // Embedded: core 0's cells get the same state (names carry the
    // "c0." prefix); everything else gets junk that varies per trial.
    for (junk_seed, chip_pi) in [(0u32, false), (7, true), (1234, true)] {
        let embedded_state = |name: &str| -> bool {
            if let Some(suffix) = name.strip_prefix("c0.") {
                core0_state(suffix)
            } else {
                // Arbitrary junk for neighbours.
                name.bytes()
                    .fold(junk_seed, |a, b| a.wrapping_mul(17).wrapping_add(b.into()))
                    % 2
                    == 0
            }
        };
        let together = capture_by_name(&embedded, chip_pi, &embedded_state);

        for (name, &value) in &alone {
            // Input wrapper cells capture the (environment-driven) port
            // value — the one legitimate dependence — so exclude them.
            if input_cell_names.contains(name) {
                continue;
            }
            let embedded_name = format!("c0.{name}");
            assert_eq!(
                together.get(&embedded_name),
                Some(&value),
                "capture of {name} changed in-SOC (junk seed {junk_seed}, pi {chip_pi})"
            );
        }
    }
}

#[test]
fn unwrapped_core_captures_do_depend_on_environment() {
    // The control: without wrappers, a core fed by chip inputs or
    // neighbours is NOT isolated — some capture must change when the
    // environment does. (This is exactly why monolithic testing cannot
    // reuse stand-alone patterns.)
    let soc = mini_soc(11).expect("builds");
    let flat = soc.flatten().expect("flattens");

    let state = |name: &str| -> bool {
        name.bytes()
            .fold(0u32, |a, b| a.wrapping_mul(31).wrapping_add(b.into()))
            % 3
            == 0
    };
    let a = capture_by_name(&flat, false, &state);
    let b = capture_by_name(&flat, true, &state);
    // Core B (index 1) is fed by core A's outputs; chip PIs feed core A.
    let changed = a
        .iter()
        .any(|(name, &v)| b.get(name) != Some(&v) && name.starts_with("c0."));
    assert!(
        changed,
        "flipping chip inputs should disturb unwrapped captures"
    );
}

#[test]
fn flatten_wrapped_adds_exactly_isocost_cells() {
    let soc = mini_soc(5).expect("builds");
    let bare = soc.flatten().expect("flattens");
    let wrapped = soc.flatten_wrapped().expect("flattens wrapped");
    let isocost: usize = soc
        .cores()
        .iter()
        .map(|c| c.input_count() + c.output_count())
        .sum();
    assert_eq!(wrapped.dff_count(), bare.dff_count() + isocost);
    // Chip interface unchanged.
    assert_eq!(wrapped.input_count(), bare.input_count());
    assert_eq!(wrapped.output_count(), bare.output_count());
    let _ = NodeId::from_index(0);
}
