//! Chaos acceptance suite for the `modsoc serve` daemon.
//!
//! Hostile and unlucky clients — killed mid-request, slowloris writers,
//! duplicate stampedes, queue overflow, SIGTERM mid-flight — must never
//! wedge the daemon, corrupt the store, or produce divergent answers to
//! identical questions.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use modsoc::analysis::serve::{http_request, HttpResponse, ServeConfig, Server};
use modsoc::metrics::Counter;
use modsoc::store::ResultStore;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("modsoc_serve_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Start an in-process server on an ephemeral port; returns the
/// address, a shutdown closure and the join handle.
fn start(config: ServeConfig) -> (String, impl FnOnce() -> modsoc::metrics::MetricsSnapshot) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));
    (addr, move || {
        handle.shutdown();
        join.join().expect("join")
    })
}

fn experiment_body(seed: u64) -> String {
    format!("{{\"soc\": \"mini\", \"seed\": {seed}, \"timeout_ms\": 20000}}")
}

fn post_experiment(addr: &str, seed: u64) -> std::io::Result<HttpResponse> {
    http_request(
        addr,
        "POST",
        "/experiment",
        Some(&experiment_body(seed)),
        Duration::from_secs(60),
    )
}

#[test]
fn killed_mid_request_clients_do_not_wedge_the_server() {
    let (addr, stop) = start(ServeConfig {
        workers: 2,
        read_timeout: Duration::from_millis(500),
        ..ServeConfig::default()
    });
    // A mix of abandonment points: before any bytes, mid-request-line,
    // mid-headers, and mid-body (Content-Length promises more than is
    // ever sent). Each connection is dropped without a clean close.
    let partials: &[&[u8]] = &[
        b"",
        b"POST /exp",
        b"POST /experiment HTTP/1.1\r\nContent-Le",
        b"POST /experiment HTTP/1.1\r\nContent-Length: 500\r\n\r\n{\"soc\":",
    ];
    for chunk in partials {
        let mut s = TcpStream::connect(&addr).expect("connect");
        s.write_all(chunk).expect("write");
        drop(s); // vanish
    }
    // The daemon must still serve real work afterwards.
    let resp = post_experiment(&addr, 42).expect("healthy request survives");
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let snap = stop();
    assert_eq!(snap.counter(Counter::ServePanics), 0);
}

#[test]
fn slowloris_writer_is_dropped_on_the_read_timeout() {
    let (addr, stop) = start(ServeConfig {
        workers: 1, // one worker: a held worker would block everything
        read_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    // Trickle a request one byte at a time, slower than the server's
    // patience, while holding the connection open.
    let mut slow = TcpStream::connect(&addr).expect("connect");
    slow.write_all(b"POST /experiment HTT")
        .expect("first bytes");
    std::thread::sleep(Duration::from_millis(600));
    // The sole worker must have abandoned the slowloris by now and be
    // free to serve a healthy request.
    let resp = http_request(&addr, "GET", "/healthz", None, Duration::from_secs(5))
        .expect("healthz after slowloris");
    assert_eq!(resp.status, 200);
    drop(slow);
    let snap = stop();
    assert_eq!(snap.counter(Counter::ServePanics), 0);
}

#[test]
fn concurrent_identical_requests_serve_one_engine_run() {
    // Reference: the same unit, once, against its own store.
    let solo_dir = temp_dir("solo");
    let solo_store = Arc::new(ResultStore::open(&solo_dir).expect("store"));
    let (solo_addr, solo_stop) = start(ServeConfig {
        workers: 4,
        store: Some(Arc::clone(&solo_store)),
        ..ServeConfig::default()
    });
    let solo = post_experiment(&solo_addr, 77).expect("solo run");
    assert_eq!(solo.status, 200, "{}", solo.body_text());
    solo_stop();
    let solo_writes = solo_store.writes();
    assert!(solo_writes > 0, "a cold run must write store entries");

    // Stampede: six identical requests at once against a fresh store.
    let dir = temp_dir("stampede");
    let store = Arc::new(ResultStore::open(&dir).expect("store"));
    let (addr, stop) = start(ServeConfig {
        workers: 6,
        store: Some(Arc::clone(&store)),
        ..ServeConfig::default()
    });
    let mut bodies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || post_experiment(&addr, 77).expect("stampede request"))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let resp = h.join().expect("no client panic");
                assert_eq!(resp.status, 200, "{}", resp.body_text());
                resp.body_text()
            })
            .collect()
    });
    let snap = stop();
    bodies.sort();
    bodies.dedup();
    assert_eq!(
        bodies.len(),
        1,
        "identical requests must get identical bytes"
    );
    // Exactly one engine run: the stampede wrote no more than the solo
    // run did (followers coalesced on the in-flight leader, or hit the
    // store for anything that landed after it finished — never a second
    // cold computation).
    assert_eq!(
        store.writes(),
        solo_writes,
        "coalescing must not duplicate engine work (coalesce hits: {})",
        snap.counter(Counter::ServeCoalesceHits)
    );
    let (valid, corrupt) = store.verify_all().expect("sweep");
    assert_eq!(corrupt, 0, "{valid} valid entries, {corrupt} corrupt");
    let _ = std::fs::remove_dir_all(&solo_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queue_overflow_sheds_loudly_never_hangs() {
    let (addr, stop) = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    // 12 distinct-seed requests (no coalescing) against one worker and
    // a one-slot queue: most must be refused at admission.
    let responses: Vec<HttpResponse> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..12)
            .map(|i| {
                let addr = addr.clone();
                s.spawn(move || post_experiment(&addr, 9000 + i))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("no panic")
                    .expect("every request gets an answer")
            })
            .collect()
    });
    let shed: Vec<&HttpResponse> = responses.iter().filter(|r| r.status == 503).collect();
    let ok = responses.iter().filter(|r| r.status == 200).count();
    assert_eq!(
        ok + shed.len(),
        responses.len(),
        "only 200 or 503 under overflow"
    );
    assert!(!shed.is_empty(), "overflow must shed at least one request");
    for r in &shed {
        assert!(
            r.header("retry-after").is_some(),
            "every 503 must carry Retry-After"
        );
    }
    let snap = stop();
    assert_eq!(snap.counter(Counter::ServeShed) as usize, shed.len());
    assert_eq!(snap.counter(Counter::ServePanics), 0);
}

/// Read exactly one HTTP response (head + `Content-Length` body) off a
/// raw keep-alive socket, returning (status, connection header, bytes
/// read past the response — pipelined leftovers).
fn read_one_response(s: &mut TcpStream) -> (u16, String, Vec<u8>) {
    use std::io::Read;
    let mut buf = Vec::new();
    let mut tmp = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = s.read(&mut tmp).expect("response head");
        assert!(n > 0, "connection closed before a full response head");
        buf.extend_from_slice(&tmp[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).expect("utf8 head");
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut connection = String::new();
    let mut content_length = 0usize;
    for line in head.split("\r\n").skip(1) {
        if let Some((k, v)) = line.split_once(':') {
            match k.trim().to_ascii_lowercase().as_str() {
                "connection" => connection = v.trim().to_string(),
                "content-length" => content_length = v.trim().parse().expect("length"),
                _ => {}
            }
        }
    }
    let body_start = head_end + 4;
    while buf.len() < body_start + content_length {
        let n = s.read(&mut tmp).expect("response body");
        assert!(n > 0, "connection closed mid-body");
        buf.extend_from_slice(&tmp[..n]);
    }
    (
        status,
        connection,
        buf.split_off(body_start + content_length),
    )
}

/// Satellite (ISSUE 8): a keep-alive request whose body stalls past the
/// read deadline must get a clean 408 and a close — the late bytes must
/// never be misparsed as the method line of a fresh request.
#[test]
fn stalled_keep_alive_body_gets_408_and_close_not_misparse() {
    let (addr, stop) = start(ServeConfig {
        workers: 1,
        keep_alive: true,
        read_timeout: Duration::from_millis(300),
        idle_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    let mut s = TcpStream::connect(&addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Request 1: complete, served on the now-persistent connection.
    s.write_all(b"GET /healthz HTTP/1.1\r\nContent-Length: 0\r\nConnection: keep-alive\r\n\r\n")
        .expect("request 1");
    let (status, connection, leftover) = read_one_response(&mut s);
    assert_eq!(status, 200);
    assert_eq!(connection, "keep-alive");
    assert!(leftover.is_empty(), "no pipelined bytes were sent");
    // Request 2: head plus a body prefix, then a stall longer than the
    // server's read deadline.
    s.write_all(b"POST /analyze HTTP/1.1\r\nContent-Length: 24\r\n\r\n{\"soc\"")
        .expect("request 2 prefix");
    std::thread::sleep(Duration::from_millis(800));
    // The rest of the body arrives late. The server may already have
    // closed; a write error is acceptable, a misparse is not.
    let _ = s.write_all(b": \"late late late\"}");
    let (status, connection, mut rest) = read_one_response(&mut s);
    assert_eq!(status, 408, "stalled body must time out, not be misparsed");
    assert_eq!(connection, "close", "a timed-out connection must close");
    // Nothing but EOF after the 408: the late body bytes must not have
    // been answered as if they opened a new request.
    use std::io::Read;
    s.read_to_end(&mut rest).expect("eof");
    assert!(
        rest.is_empty(),
        "unexpected bytes after the 408: {:?}",
        String::from_utf8_lossy(&rest)
    );
    // The daemon itself is unharmed.
    let resp = http_request(&addr, "GET", "/healthz", None, Duration::from_secs(5))
        .expect("healthz after stall");
    assert_eq!(resp.status, 200);
    let snap = stop();
    assert_eq!(snap.counter(Counter::ServeRequestTimeouts), 1);
    assert_eq!(snap.counter(Counter::ServePanics), 0);
}

/// Satellite (ISSUE 8): batching composes with coalescing. K identical
/// plus M distinct compatible requests fired concurrently run each
/// unique unit exactly once (store writes match sequential execution),
/// coalesce the K duplicates, and return bodies byte-identical to
/// sequential single-request execution.
#[test]
fn batching_composes_with_coalescing_and_stays_byte_identical() {
    const HOT: u64 = 300;
    const DISTINCT: [u64; 3] = [301, 302, 303];
    const K: usize = 4; // identical (seed HOT) requests

    // Sequential reference: every unique unit once, batching off.
    let seq_dir = temp_dir("batch_seq");
    let seq_store = Arc::new(ResultStore::open(&seq_dir).expect("store"));
    let (seq_addr, seq_stop) = start(ServeConfig {
        workers: 1,
        store: Some(Arc::clone(&seq_store)),
        ..ServeConfig::default()
    });
    let mut sequential: Vec<(u64, String)> = Vec::new();
    for seed in std::iter::once(HOT).chain(DISTINCT) {
        let resp = post_experiment(&seq_addr, seed).expect("sequential run");
        assert_eq!(resp.status, 200, "{}", resp.body_text());
        sequential.push((seed, resp.body_text()));
    }
    seq_stop();
    let sequential_writes = seq_store.writes();
    assert!(sequential_writes > 0);

    // Concurrent stampede with batching on: a wide window so the
    // concurrently-arriving compatible units actually group.
    let dir = temp_dir("batch_mix");
    let store = Arc::new(ResultStore::open(&dir).expect("store"));
    let (addr, stop) = start(ServeConfig {
        workers: 6,
        batch_max: 4,
        batch_window: Duration::from_millis(150),
        store: Some(Arc::clone(&store)),
        ..ServeConfig::default()
    });
    let concurrent: Vec<(u64, String)> = std::thread::scope(|s| {
        let seeds: Vec<u64> = std::iter::repeat_n(HOT, K).chain(DISTINCT).collect();
        let handles: Vec<_> = seeds
            .into_iter()
            .map(|seed| {
                let addr = addr.clone();
                s.spawn(move || (seed, post_experiment(&addr, seed).expect("stampede")))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let (seed, resp) = h.join().expect("client thread");
                assert_eq!(resp.status, 200, "{}", resp.body_text());
                (seed, resp.body_text())
            })
            .collect()
    });
    let snap = stop();

    // Exactly M+1 engine runs: the stampede wrote what sequential wrote.
    assert_eq!(
        store.writes(),
        sequential_writes,
        "batching/coalescing must not duplicate or skip engine work"
    );
    // The K duplicates coalesced onto one flight.
    assert_eq!(snap.counter(Counter::ServeCoalesceHits), K as u64 - 1);
    // Every unique unit went through the batch path exactly once.
    assert_eq!(
        snap.counter(Counter::ServeBatchedUnits),
        1 + DISTINCT.len() as u64
    );
    assert!(snap.counter(Counter::ServeBatches) >= 1);
    // Byte identity: every response matches its sequential twin.
    for (seed, body) in &concurrent {
        let twin = sequential
            .iter()
            .find(|(s, _)| s == seed)
            .map(|(_, b)| b)
            .expect("sequential twin");
        assert_eq!(body, twin, "seed {seed} diverged from sequential bytes");
    }
    assert_eq!(snap.counter(Counter::ServePanics), 0);
    let _ = std::fs::remove_dir_all(&seq_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Process-level: SIGTERM mid-service must drain, exit 0, and leave the
/// shared store passing a corruption sweep.
#[test]
fn sigterm_drains_the_daemon_and_preserves_the_store() {
    let dir = temp_dir("sigterm");
    let store_dir = dir.join("store");
    let mut child = Command::new(env!("CARGO_BIN_EXE_modsoc"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--store",
            store_dir.to_str().expect("utf8"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("listen line");
    let addr = line
        .trim()
        .rsplit("http://")
        .next()
        .expect("address in listen line")
        .to_string();

    // Put real work through it so the store has entries to corrupt.
    let resp = post_experiment(&addr, 5).expect("request against daemon");
    assert_eq!(resp.status, 200, "{}", resp.body_text());

    // SIGTERM while more requests are in flight.
    let firing = std::thread::spawn({
        let addr = addr.clone();
        move || {
            for i in 0..4u64 {
                // Deliveries may fail once the drain begins — that is
                // the point. Nothing may hang or panic.
                let _ = post_experiment(&addr, 100 + i);
            }
        }
    });
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(term.success());
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "graceful drain must exit 0, got {status}");
    firing.join().expect("client thread");

    let store = ResultStore::open(&store_dir).expect("reopen");
    let (valid, corrupt) = store.verify_all().expect("sweep");
    assert_eq!(corrupt, 0, "{valid} valid entries, {corrupt} corrupt");
    assert!(valid > 0, "the pre-SIGTERM request must have persisted");
    let _ = std::fs::remove_dir_all(&dir);
}
