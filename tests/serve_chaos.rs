//! Chaos acceptance suite for the `modsoc serve` daemon.
//!
//! Hostile and unlucky clients — killed mid-request, slowloris writers,
//! duplicate stampedes, queue overflow, SIGTERM mid-flight — must never
//! wedge the daemon, corrupt the store, or produce divergent answers to
//! identical questions.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use modsoc::analysis::serve::{http_request, HttpResponse, ServeConfig, Server};
use modsoc::metrics::Counter;
use modsoc::store::ResultStore;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("modsoc_serve_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Start an in-process server on an ephemeral port; returns the
/// address, a shutdown closure and the join handle.
fn start(config: ServeConfig) -> (String, impl FnOnce() -> modsoc::metrics::MetricsSnapshot) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));
    (addr, move || {
        handle.shutdown();
        join.join().expect("join")
    })
}

fn experiment_body(seed: u64) -> String {
    format!("{{\"soc\": \"mini\", \"seed\": {seed}, \"timeout_ms\": 20000}}")
}

fn post_experiment(addr: &str, seed: u64) -> std::io::Result<HttpResponse> {
    http_request(
        addr,
        "POST",
        "/experiment",
        Some(&experiment_body(seed)),
        Duration::from_secs(60),
    )
}

#[test]
fn killed_mid_request_clients_do_not_wedge_the_server() {
    let (addr, stop) = start(ServeConfig {
        workers: 2,
        read_timeout: Duration::from_millis(500),
        ..ServeConfig::default()
    });
    // A mix of abandonment points: before any bytes, mid-request-line,
    // mid-headers, and mid-body (Content-Length promises more than is
    // ever sent). Each connection is dropped without a clean close.
    let partials: &[&[u8]] = &[
        b"",
        b"POST /exp",
        b"POST /experiment HTTP/1.1\r\nContent-Le",
        b"POST /experiment HTTP/1.1\r\nContent-Length: 500\r\n\r\n{\"soc\":",
    ];
    for chunk in partials {
        let mut s = TcpStream::connect(&addr).expect("connect");
        s.write_all(chunk).expect("write");
        drop(s); // vanish
    }
    // The daemon must still serve real work afterwards.
    let resp = post_experiment(&addr, 42).expect("healthy request survives");
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let snap = stop();
    assert_eq!(snap.counter(Counter::ServePanics), 0);
}

#[test]
fn slowloris_writer_is_dropped_on_the_read_timeout() {
    let (addr, stop) = start(ServeConfig {
        workers: 1, // one worker: a held worker would block everything
        read_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    // Trickle a request one byte at a time, slower than the server's
    // patience, while holding the connection open.
    let mut slow = TcpStream::connect(&addr).expect("connect");
    slow.write_all(b"POST /experiment HTT")
        .expect("first bytes");
    std::thread::sleep(Duration::from_millis(600));
    // The sole worker must have abandoned the slowloris by now and be
    // free to serve a healthy request.
    let resp = http_request(&addr, "GET", "/healthz", None, Duration::from_secs(5))
        .expect("healthz after slowloris");
    assert_eq!(resp.status, 200);
    drop(slow);
    let snap = stop();
    assert_eq!(snap.counter(Counter::ServePanics), 0);
}

#[test]
fn concurrent_identical_requests_serve_one_engine_run() {
    // Reference: the same unit, once, against its own store.
    let solo_dir = temp_dir("solo");
    let solo_store = Arc::new(ResultStore::open(&solo_dir).expect("store"));
    let (solo_addr, solo_stop) = start(ServeConfig {
        workers: 4,
        store: Some(Arc::clone(&solo_store)),
        ..ServeConfig::default()
    });
    let solo = post_experiment(&solo_addr, 77).expect("solo run");
    assert_eq!(solo.status, 200, "{}", solo.body_text());
    solo_stop();
    let solo_writes = solo_store.writes();
    assert!(solo_writes > 0, "a cold run must write store entries");

    // Stampede: six identical requests at once against a fresh store.
    let dir = temp_dir("stampede");
    let store = Arc::new(ResultStore::open(&dir).expect("store"));
    let (addr, stop) = start(ServeConfig {
        workers: 6,
        store: Some(Arc::clone(&store)),
        ..ServeConfig::default()
    });
    let mut bodies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || post_experiment(&addr, 77).expect("stampede request"))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let resp = h.join().expect("no client panic");
                assert_eq!(resp.status, 200, "{}", resp.body_text());
                resp.body_text()
            })
            .collect()
    });
    let snap = stop();
    bodies.sort();
    bodies.dedup();
    assert_eq!(
        bodies.len(),
        1,
        "identical requests must get identical bytes"
    );
    // Exactly one engine run: the stampede wrote no more than the solo
    // run did (followers coalesced on the in-flight leader, or hit the
    // store for anything that landed after it finished — never a second
    // cold computation).
    assert_eq!(
        store.writes(),
        solo_writes,
        "coalescing must not duplicate engine work (coalesce hits: {})",
        snap.counter(Counter::ServeCoalesceHits)
    );
    let (valid, corrupt) = store.verify_all().expect("sweep");
    assert_eq!(corrupt, 0, "{valid} valid entries, {corrupt} corrupt");
    let _ = std::fs::remove_dir_all(&solo_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queue_overflow_sheds_loudly_never_hangs() {
    let (addr, stop) = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    // 12 distinct-seed requests (no coalescing) against one worker and
    // a one-slot queue: most must be refused at admission.
    let responses: Vec<HttpResponse> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..12)
            .map(|i| {
                let addr = addr.clone();
                s.spawn(move || post_experiment(&addr, 9000 + i))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("no panic")
                    .expect("every request gets an answer")
            })
            .collect()
    });
    let shed: Vec<&HttpResponse> = responses.iter().filter(|r| r.status == 503).collect();
    let ok = responses.iter().filter(|r| r.status == 200).count();
    assert_eq!(
        ok + shed.len(),
        responses.len(),
        "only 200 or 503 under overflow"
    );
    assert!(!shed.is_empty(), "overflow must shed at least one request");
    for r in &shed {
        assert!(
            r.header("retry-after").is_some(),
            "every 503 must carry Retry-After"
        );
    }
    let snap = stop();
    assert_eq!(snap.counter(Counter::ServeShed) as usize, shed.len());
    assert_eq!(snap.counter(Counter::ServePanics), 0);
}

/// Process-level: SIGTERM mid-service must drain, exit 0, and leave the
/// shared store passing a corruption sweep.
#[test]
fn sigterm_drains_the_daemon_and_preserves_the_store() {
    let dir = temp_dir("sigterm");
    let store_dir = dir.join("store");
    let mut child = Command::new(env!("CARGO_BIN_EXE_modsoc"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--store",
            store_dir.to_str().expect("utf8"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("listen line");
    let addr = line
        .trim()
        .rsplit("http://")
        .next()
        .expect("address in listen line")
        .to_string();

    // Put real work through it so the store has entries to corrupt.
    let resp = post_experiment(&addr, 5).expect("request against daemon");
    assert_eq!(resp.status, 200, "{}", resp.body_text());

    // SIGTERM while more requests are in flight.
    let firing = std::thread::spawn({
        let addr = addr.clone();
        move || {
            for i in 0..4u64 {
                // Deliveries may fail once the drain begins — that is
                // the point. Nothing may hang or panic.
                let _ = post_experiment(&addr, 100 + i);
            }
        }
    });
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(term.success());
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "graceful drain must exit 0, got {status}");
    firing.join().expect("client thread");

    let store = ResultStore::open(&store_dir).expect("reopen");
    let (valid, corrupt) = store.verify_all().expect("sweep");
    assert_eq!(corrupt, 0, "{valid} valid entries, {corrupt} corrupt");
    assert!(valid > 0, "the pre-SIGTERM request must have persisted");
    let _ = std::fs::remove_dir_all(&dir);
}
