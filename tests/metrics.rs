//! Cross-crate tests for the metrics layer: the determinism contract
//! (deterministic report sections are identical at any `--jobs` value)
//! and the JSON report round-trip.

use proptest::prelude::*;

use modsoc::analysis::experiment::ExperimentOptions;
use modsoc::analysis::metrics::{
    run_soc_experiment_metered, Counter, MetricsSink, Phase, RecordingSink, RunMetrics,
};
use modsoc::analysis::RunBudget;
use modsoc::atpg::{Atpg, AtpgOptions};
use modsoc::circuitgen::soc::mini_soc;
use modsoc::circuitgen::{generate, CoreProfile};
use std::sync::Arc;

/// Run the metered experiment on `mini_soc(seed)` at a given job count
/// and return the report.
fn metered_report(seed: u64, jobs: usize) -> RunMetrics {
    let netlist = mini_soc(seed).expect("mini soc builds");
    let options = ExperimentOptions::paper_tables_1_2().with_jobs(jobs);
    run_soc_experiment_metered(&netlist, &options, &RunBudget::unlimited())
        .expect("experiment runs")
        .metrics
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline contract: for any netlist seed, every deterministic
    /// report section (counters, phase call counts, outcomes, pattern
    /// counts) is identical at jobs 1, 2 and 4.
    #[test]
    fn metered_counters_are_jobs_invariant(seed in 1u64..500) {
        let base = metered_report(seed, 1);
        for jobs in [2usize, 4] {
            let other = metered_report(seed, jobs);
            prop_assert!(
                base.deterministic_eq(&other),
                "seed {} jobs {}: {:?} vs {:?}",
                seed, jobs, base.totals.counters, other.totals.counters
            );
        }
        // And the serialized form survives the shell-style volatile-line
        // filter byte-for-byte.
        let filter = |text: &str| -> String {
            text.lines()
                .filter(|l| !(l.contains("_ms\":")
                    || l.contains("\"sched\": ")
                    || l.contains("\"jobs\": ")))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let four = metered_report(seed, 4);
        prop_assert_eq!(filter(&base.to_json()), filter(&four.to_json()));
    }
}

#[test]
fn report_round_trip_and_field_order_are_stable() {
    let report = metered_report(7, 2);
    let text = report.to_json();
    assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
    let back = RunMetrics::from_json(&text).expect("parses");
    assert!(report.deterministic_eq(&back));
    // Serialization is a fixed point: parse → re-serialize is identical,
    // which is what makes reports diffable across runs and releases.
    assert_eq!(back.to_json(), text);
}

#[test]
fn recording_sink_observes_engine_without_changing_results() {
    let core = generate(&CoreProfile::new("obs", 10, 5, 8).with_seed(3)).expect("generates");
    let plain = Atpg::new(AtpgOptions::default()).run(&core).expect("runs");
    let sink = Arc::new(RecordingSink::new());
    let metered = Atpg::with_sink(
        AtpgOptions::default(),
        Arc::clone(&sink) as Arc<dyn MetricsSink>,
    )
    .run(&core)
    .expect("runs");
    // Observation must not perturb the engine.
    assert_eq!(plain.pattern_count(), metered.pattern_count());
    assert_eq!(plain.stats.detected, metered.stats.detected);
    let snap = sink.snapshot();
    assert_eq!(
        snap.counter(Counter::PatternsFinal),
        metered.pattern_count() as u64
    );
    assert_eq!(
        snap.counter(Counter::FaultsCollapsed),
        metered.stats.collapsed_faults as u64
    );
    assert_eq!(snap.phase_calls(Phase::IndexBuild), 1);
    assert_eq!(snap.phase_calls(Phase::PodemPhase), 1);
    // The detection counter matches the stats' detected classes.
    assert_eq!(
        snap.counter(Counter::FaultSimDetections),
        metered.stats.detected as u64
    );
}
