//! Store-corruption acceptance suite: truncated or bit-flipped store
//! entries and campaign journals must degrade to a logged eviction and a
//! recompute — never a crash, and never a silently wrong result.
//!
//! The sweeps use a fixed seed so a failure names a reproducible case.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use modsoc::analysis::campaign::{run_campaign, CampaignSpec, UnitStatus};
use modsoc::analysis::experiment::{run_soc_experiment, ExperimentOptions, SocExperiment};
use modsoc::analysis::RunBudget;
use modsoc::circuitgen::soc::mini_soc;
use modsoc::circuitgen::SocNetlist;
use modsoc::metrics::NullSink;
use modsoc::store::ResultStore;

const CHAOS_SEED: u64 = 0x5EED_CAC4_EBAD;

/// Minimal xorshift so corruption positions are deterministic without
/// pulling in an RNG dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("modsoc_store_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn object_files(store_dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(store_dir.join("objects"))
        .expect("objects dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    files.sort();
    files
}

/// Truncate a file to half its length.
fn truncate(path: &Path) {
    let bytes = std::fs::read(path).expect("read entry");
    std::fs::write(path, &bytes[..bytes.len() / 2]).expect("truncate entry");
}

/// Flip one seed-chosen byte of a file.
fn flip_byte(path: &Path, rng: &mut Rng) {
    let mut bytes = std::fs::read(path).expect("read entry");
    assert!(!bytes.is_empty());
    let idx = (rng.next() % bytes.len() as u64) as usize;
    bytes[idx] ^= 0xFF;
    std::fs::write(path, bytes).expect("write corrupted entry");
}

fn assert_same_experiment(a: &SocExperiment, b: &SocExperiment) {
    assert_eq!(a.t_mono, b.t_mono);
    assert_eq!(a.eq2_strict, b.eq2_strict);
    assert_eq!(
        a.cores.iter().map(|c| c.patterns).collect::<Vec<_>>(),
        b.cores.iter().map(|c| c.patterns).collect::<Vec<_>>()
    );
    assert_eq!(a.analysis.modular().total(), b.analysis.modular().total());
}

fn warm_store(dir: &Path, netlist: &SocNetlist) -> (Arc<ResultStore>, SocExperiment) {
    let store = Arc::new(ResultStore::open(dir).expect("open store"));
    let options = ExperimentOptions::paper_tables_1_2().with_store(Arc::clone(&store));
    let exp = run_soc_experiment(netlist, &options).expect("cold run");
    (store, exp)
}

#[test]
fn truncated_store_entries_are_evicted_and_recomputed() {
    let dir = temp_dir("truncate");
    let netlist = mini_soc(7).expect("mini soc");
    let (store, baseline) = warm_store(&dir, &netlist);
    assert_eq!(store.writes(), 3, "2 cores + monolithic cached");
    drop(store);

    let files = object_files(&dir);
    assert_eq!(files.len(), 3);
    for f in &files {
        truncate(f);
    }

    // A fresh process image: every lookup sees a truncated entry, evicts
    // it, recomputes, and rewrites — results identical to the baseline.
    let (store, recomputed) = warm_store(&dir, &netlist);
    assert_same_experiment(&baseline, &recomputed);
    assert_eq!(store.hits(), 0);
    assert_eq!(store.evictions(), 3, "every truncated entry evicted");
    assert_eq!(store.writes(), 3, "every entry refreshed");

    // And the refreshed store serves hits again.
    let options = ExperimentOptions::paper_tables_1_2().with_store(Arc::clone(&store));
    let warm = run_soc_experiment(&netlist, &options).expect("warm run");
    assert_same_experiment(&baseline, &warm);
    assert_eq!(store.hits(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_store_entries_fail_checksum_and_recompute() {
    let netlist = mini_soc(7).expect("mini soc");
    let mut rng = Rng(CHAOS_SEED);
    // Sweep several corruption positions; each case corrupts every entry
    // at a different seed-chosen byte.
    for case in 0..5 {
        let dir = temp_dir(&format!("flip{case}"));
        let (store, baseline) = warm_store(&dir, &netlist);
        drop(store);
        for f in &object_files(&dir) {
            flip_byte(f, &mut rng);
        }
        let (store, recomputed) = warm_store(&dir, &netlist);
        assert_same_experiment(&baseline, &recomputed);
        assert_eq!(store.hits(), 0, "case {case}: no corrupt entry may hit");
        // A flip in the payload trips the checksum; a flip in the JSON
        // framing trips the parser; a flip in the recorded key trips the
        // key check. All paths must evict.
        assert_eq!(store.evictions(), 3, "case {case}");
        assert_eq!(store.writes(), 3, "case {case}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn corrupted_campaign_journal_reruns_units_instead_of_crashing() {
    let spec = CampaignSpec::from_json(
        r#"{"schema":1,"name":"chaos","units":[
            {"name":"m7","soc":"mini","seed":7},
            {"name":"m9","soc":"mini","seed":9}
        ]}"#,
    )
    .expect("spec");
    let options = ExperimentOptions::paper_tables_1_2();
    let budget = RunBudget::unlimited();
    for (case, corrupt) in [truncate as fn(&Path), |p: &Path| {
        let mut r = Rng(CHAOS_SEED);
        flip_byte(p, &mut r);
    }]
    .iter()
    .enumerate()
    {
        let dir = temp_dir(&format!("journal{case}"));
        let store = ResultStore::open(&dir).expect("open store");
        let first = run_campaign(&spec, &options, &budget, &store, false, &NullSink)
            .expect("first campaign run");
        assert!(first.is_complete());
        drop(store);

        let journal = dir.join("journals").join("campaign-chaos.json");
        assert!(journal.exists(), "journal written");
        corrupt(&journal);

        // Resume over the corrupt journal: the journal is discarded (one
        // eviction), both units re-run to completion, and the journal is
        // rebuilt — no crash, no skipped-but-wrong rows.
        let store = ResultStore::open(&dir).expect("reopen store");
        let resumed = run_campaign(&spec, &options, &budget, &store, false, &NullSink)
            .expect("resume over corrupt journal");
        assert!(resumed.is_complete(), "case {case}");
        assert_eq!(resumed.units.len(), 2);
        for (a, b) in first.units.iter().zip(&resumed.units) {
            assert_eq!(b.status, UnitStatus::Complete, "case {case}: must re-run");
            assert_eq!(a.t_mono, b.t_mono, "case {case}");
            assert_eq!(a.tdv_modular, b.tdv_modular, "case {case}");
        }
        assert_eq!(store.evictions(), 1, "case {case}: corrupt journal evicted");

        // Third run: the rebuilt journal skips both units again.
        let third = run_campaign(&spec, &options, &budget, &store, false, &NullSink)
            .expect("third campaign run");
        assert!(third.units.iter().all(|u| u.status == UnitStatus::Skipped));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
