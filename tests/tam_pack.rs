//! Property-based and deterministic invariants of the rectangle
//! bin-packing wrapper/TAM co-optimizer.
//!
//! The invariants hold over three input families: random wrapper cores
//! (proptest), circuitgen ISCAS'89-lookalike profiles, and the full
//! ITC'02 reconstruction sweep. Every check is independent of the packer
//! internals — overlap and power are recomputed from the raw placements.

use proptest::prelude::*;

use modsoc::analysis::reconstruct::reconstruct_table4;
use modsoc::circuitgen::profile::iscas;
use modsoc::soc::itc02;
use modsoc::tam::arch::{soc_test_time, TamArchitecture};
use modsoc::tam::binpack::{pack, PackedSchedule};
use modsoc::tam::constraints::{pack_constrained, power_cores, scan_power_model};
use modsoc::tam::wrapper::WrapperCore;

/// Every placement's wires are in-budget, distinct, and no wire carries
/// two placements over overlapping time intervals.
fn assert_no_overlap(s: &PackedSchedule) {
    for p in &s.placements {
        assert_eq!(p.wires.len(), p.width, "{}: wire count != width", p.name);
        assert!(p.start < p.end, "{}: empty interval", p.name);
        for &w in &p.wires {
            assert!(
                w < s.width,
                "{}: wire {w} outside budget {}",
                p.name,
                s.width
            );
        }
        let mut sorted = p.wires.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), p.width, "{}: duplicate wires", p.name);
    }
    for (i, a) in s.placements.iter().enumerate() {
        for b in &s.placements[i + 1..] {
            if a.start < b.end && b.start < a.end {
                for w in &a.wires {
                    assert!(
                        !b.wires.contains(w),
                        "wire {w} double-booked by {} and {}",
                        a.name,
                        b.name
                    );
                }
            }
        }
    }
}

/// Concurrent power, recomputed from raw placements at every start
/// event, never exceeds the ceiling.
fn assert_power_within(s: &PackedSchedule, powers: &[u64], ceiling: u64) {
    for p in &s.placements {
        let at = p.start;
        let concurrent: u64 = s
            .placements
            .iter()
            .filter(|q| q.start <= at && at < q.end)
            .map(|q| powers[q.core])
            .sum();
        assert!(
            concurrent <= ceiling,
            "power {concurrent} > ceiling {ceiling} at t={at}"
        );
    }
}

/// The serial upper bound: one core at a time, each on the full TAM.
fn serial_time(cores: &[WrapperCore], width: usize) -> u64 {
    soc_test_time(TamArchitecture::Multiplexing, cores, width)
        .expect("serial schedule exists")
        .total_time
}

fn arb_core(idx: usize) -> impl Strategy<Value = WrapperCore> {
    (
        1usize..120,
        1usize..120,
        proptest::collection::vec(1usize..200, 1..5),
        1u64..500,
    )
        .prop_map(move |(i, o, chains, p)| {
            WrapperCore::new(format!("c{idx}"), i, o, chains).with_patterns(p)
        })
}

fn arb_cores() -> impl Strategy<Value = Vec<WrapperCore>> {
    (1usize..8).prop_flat_map(|n| (0..n).map(arb_core).collect::<Vec<_>>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn packing_invariants_hold_for_random_cores(
        cores in arb_cores(),
        width in 1usize..32,
    ) {
        let s = pack(&cores, width).unwrap();
        prop_assert_eq!(s.placements.len(), cores.len());
        assert_no_overlap(&s);
        prop_assert!(s.makespan() <= serial_time(&cores, width));
    }

    #[test]
    fn constrained_packing_respects_the_ceiling(
        cores in arb_cores(),
        width in 1usize..32,
        slack in 0u64..2000,
    ) {
        let pcs = power_cores(&cores);
        let powers: Vec<u64> = cores.iter().map(scan_power_model).collect();
        // Any ceiling at or above the hungriest core is feasible; sweep
        // from barely-feasible (forced serialization) up to no-op.
        let ceiling = powers.iter().copied().max().unwrap() + slack;
        let s = pack_constrained(&pcs, width, ceiling).unwrap();
        prop_assert_eq!(s.placements.len(), cores.len());
        assert_no_overlap(&s);
        assert_power_within(&s, &powers, ceiling);
        prop_assert!(s.makespan() <= serial_time(&cores, width));
    }

    #[test]
    fn packing_is_deterministic(cores in arb_cores(), width in 1usize..32) {
        prop_assert_eq!(pack(&cores, width).unwrap(), pack(&cores, width).unwrap());
    }
}

/// Wrapper cores derived from the circuitgen ISCAS'89-lookalike
/// profiles: exact interface counts, scan cells split over four chains.
fn circuitgen_cores() -> Vec<WrapperCore> {
    [
        iscas::s713(1),
        iscas::s1423(1),
        iscas::s5378(1),
        iscas::s13207(1),
        iscas::s15850(1),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, p)| {
        let chains = 4usize;
        let base = p.scan_cells / chains;
        let extra = p.scan_cells % chains;
        let lens: Vec<usize> = (0..chains)
            .map(|k| base + usize::from(k < extra))
            .filter(|&l| l > 0)
            .collect();
        WrapperCore::new(p.name, p.inputs, p.outputs, lens).with_patterns(50 + 25 * i as u64)
    })
    .collect()
}

#[test]
fn circuitgen_profiles_pack_within_bounds() {
    let cores = circuitgen_cores();
    for width in [4usize, 8, 16] {
        let s = pack(&cores, width).unwrap();
        assert_eq!(s.placements.len(), cores.len());
        assert_no_overlap(&s);
        assert!(s.makespan() <= serial_time(&cores, width));

        let pcs = power_cores(&cores);
        let powers: Vec<u64> = cores.iter().map(scan_power_model).collect();
        let ceiling = powers.iter().copied().max().unwrap() + powers.iter().sum::<u64>() / 4;
        let c = pack_constrained(&pcs, width, ceiling).unwrap();
        assert_no_overlap(&c);
        assert_power_within(&c, &powers, ceiling);
        assert!(c.makespan() >= s.makespan() || c == s);
    }
}

fn itc02_socs() -> Vec<(String, modsoc::soc::Soc)> {
    let mut socs = vec![
        ("soc1".to_string(), itc02::soc1()),
        ("soc2".to_string(), itc02::soc2()),
    ];
    for row in itc02::table4() {
        let soc = if row.name == "p34392" {
            itc02::p34392()
        } else {
            reconstruct_table4(row).expect("table 4 reconstructs")
        };
        socs.push((row.name.to_string(), soc));
    }
    socs
}

#[test]
fn itc02_sweep_packs_within_bounds_at_every_width() {
    for (name, soc) in itc02_socs() {
        let cores: Vec<WrapperCore> = soc
            .iter()
            .filter(|(_, c)| c.patterns > 0)
            .map(|(_, c)| WrapperCore::from_core_spec(c, 8))
            .collect();
        for width in [8usize, 16, 32] {
            let s = pack(&cores, width).unwrap();
            assert_eq!(s.placements.len(), cores.len(), "{name} at width {width}");
            assert_no_overlap(&s);
            let serial = serial_time(&cores, width);
            assert!(
                s.makespan() <= serial,
                "{name} at width {width}: packed {} > serial {serial}",
                s.makespan()
            );
            // Byte-identical on a second run: the packer has no hidden
            // state and its tie-breaks are total.
            assert_eq!(s, pack(&cores, width).unwrap(), "{name} at width {width}");
        }
    }
}

#[test]
fn itc02_constrained_sweep_respects_the_ceiling() {
    for (name, soc) in itc02_socs() {
        let cores: Vec<WrapperCore> = soc
            .iter()
            .filter(|(_, c)| c.patterns > 0)
            .map(|(_, c)| WrapperCore::from_core_spec(c, 8))
            .collect();
        let pcs = power_cores(&cores);
        let powers: Vec<u64> = cores.iter().map(scan_power_model).collect();
        let hungriest = powers.iter().copied().max().unwrap();
        let ceiling = hungriest.max(powers.iter().sum::<u64>() / 2);
        let s = pack_constrained(&pcs, 16, ceiling).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_no_overlap(&s);
        assert_power_within(&s, &powers, ceiling);
        assert!(s.makespan() <= serial_time(&cores, 16), "{name}");
    }
}
