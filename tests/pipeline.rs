//! Integration: the full live pipeline across all crates.

use modsoc::analysis::experiment::{
    run_soc_experiment, run_soc_experiment_guarded, ExperimentOptions,
};
use modsoc::analysis::RunBudget;
use modsoc::atpg::fault::enumerate_faults;
use modsoc::atpg::fault_sim::fault_coverage;
use modsoc::atpg::{Atpg, AtpgOptions};
use modsoc::circuitgen::soc::mini_soc;
use modsoc::circuitgen::{generate, CoreProfile};

#[test]
fn generate_atpg_verify_coverage_independently() {
    // Generate a core, run the engine, then *independently* verify the
    // claimed coverage by fault-simulating the shipped patterns against
    // the uncollapsed universe.
    let profile = CoreProfile::new("verify", 12, 6, 10).with_seed(17);
    let circuit = generate(&profile).expect("generates");
    let result = Atpg::new(AtpgOptions::default())
        .run(&circuit)
        .expect("atpg");
    let model = result
        .test_model
        .as_ref()
        .expect("sequential model")
        .circuit
        .clone();
    let filled = result.patterns.fill_all(result.fill);
    let universe = enumerate_faults(&model);
    let cov = fault_coverage(&model, &filled, &universe).expect("sim");
    // Universe coverage can exceed class coverage (a detected class
    // covers its members) but should be in the same region.
    assert!(
        cov >= result.fault_coverage() - 0.05,
        "universe coverage {cov} vs class coverage {}",
        result.fault_coverage()
    );
}

#[test]
fn mini_soc_experiment_reduction_and_identity() {
    let netlist = mini_soc(7).expect("builds");
    let exp =
        run_soc_experiment(&netlist, &ExperimentOptions::paper_tables_1_2()).expect("experiment");
    let a = &exp.analysis;
    // Equation 6 balances exactly with the exact benefit.
    assert_eq!(
        a.monolithic().total() + a.penalty() - a.benefit(),
        a.modular().total()
    );
    // Equation 2 holds after clamping by construction.
    assert!(a.t_mono() >= exp.soc.max_core_patterns());
    // Modular wins on this workload.
    assert!(a.reduction_ratio() > 1.0);
}

#[test]
fn flattened_soc_equivalent_to_cores_on_function() {
    // Flattening must preserve combinational function: drive the chip
    // inputs, compare the flat netlist's outputs against manual core-by-
    // core evaluation. (Scan state is zero in both by construction.)
    use modsoc::netlist::sim::Simulator;
    let netlist = mini_soc(3).expect("builds");
    let flat = netlist.flatten().expect("flattens");
    let flat_model = flat.to_test_model().expect("model");
    let sim = Simulator::new(&flat_model.circuit).expect("sim");
    // All-zero scan state, alternating chip inputs.
    let words: Vec<u64> = (0..flat_model.circuit.input_count())
        .map(|i| if i % 2 == 0 { u64::MAX } else { 0 })
        .collect();
    let outs = sim.run_outputs(&flat_model.circuit, &words);
    assert_eq!(
        outs.len(),
        flat.output_count() + flat.dff_count(),
        "primary outputs plus scan captures"
    );
}

#[test]
fn deterministic_across_runs() {
    let a = run_soc_experiment(&mini_soc(9).expect("builds"), &ExperimentOptions::default())
        .expect("experiment");
    let b = run_soc_experiment(&mini_soc(9).expect("builds"), &ExperimentOptions::default())
        .expect("experiment");
    assert_eq!(a.t_mono, b.t_mono);
    assert_eq!(a.analysis.modular().total(), b.analysis.modular().total());
}

#[test]
fn wrapped_core_tdv_matches_equation_4() {
    // Netlist-level cross-check of the paper's accounting: wrap a core
    // with dedicated cells; its test model's scan count equals
    // S + I + O, so a pattern carries 2S + ISOCOST bits, exactly the
    // Equation 4 term.
    use modsoc::netlist::wrapper::wrap_circuit;
    let profile = CoreProfile::new("wrapcheck", 9, 5, 7).with_seed(4);
    let core = generate(&profile).expect("generates");
    let wrapped = wrap_circuit(&core).expect("wraps");
    let model = wrapped.circuit.to_test_model().expect("model");
    let s = core.dff_count();
    let isocost = core.input_count() + core.output_count();
    assert_eq!(model.scan_cell_count(), s + isocost);
    // Per pattern: scan in + scan out of every cell = 2S + ISOCOST bits
    // once the functional ports are counted once each.
    let bits_per_pattern = 2 * model.scan_cell_count();
    assert_eq!(bits_per_pattern, 2 * s + 2 * isocost);
}

#[test]
fn guarded_experiment_with_unlimited_budget_matches_plain() {
    let netlist = mini_soc(7).expect("builds");
    let options = ExperimentOptions::paper_tables_1_2();
    let plain = run_soc_experiment(&netlist, &options).expect("plain");
    let guarded =
        run_soc_experiment_guarded(&netlist, &options, &RunBudget::unlimited()).expect("guarded");
    assert!(guarded.is_complete(), "{:?}", guarded.per_core_outcomes);
    assert_eq!(guarded.result.t_mono, plain.t_mono);
    assert_eq!(
        guarded.result.analysis.modular().total(),
        plain.analysis.modular().total()
    );
    // One outcome per leaf core plus the monolithic pseudo-stage (the
    // assembled SOC also carries a synthetic `top` parent, so the two
    // counts coincide).
    assert_eq!(
        guarded.per_core_outcomes.len(),
        guarded.result.soc.core_count()
    );
    assert!(guarded
        .per_core_outcomes
        .iter()
        .any(|o| o.core == "<monolithic>"));
}

#[test]
fn guarded_experiment_under_tight_budget_still_yields_rows() {
    // A pattern cap small enough to trip mid-run must still come back
    // with an analysis (partial pattern counts) and per-core outcomes,
    // not an error.
    let netlist = mini_soc(5).expect("builds");
    let options = ExperimentOptions::paper_tables_1_2();
    let budget = RunBudget::unlimited().with_max_patterns(2);
    let guarded = run_soc_experiment_guarded(&netlist, &options, &budget).expect("guarded");
    assert!(!guarded.is_complete());
    assert!(guarded.exhausted.is_some());
    assert_eq!(
        guarded.result.soc.core_count(),
        guarded.result.analysis.rows().len()
    );
    for outcome in &guarded.per_core_outcomes {
        assert!(outcome.contributed(), "{outcome:?}");
    }
}
