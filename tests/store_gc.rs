//! Properties of the size-bounded store GC (`modsoc store gc`):
//! after `gc(max_bytes)` the store fits the bound, every survivor still
//! verifies clean, and a warm consumer recomputes *exactly* the evicted
//! set — no survivor is ever recomputed, no evictee is ever trusted.

use proptest::prelude::*;
use std::sync::Arc;

use modsoc::analysis::campaign::{run_campaign, CampaignSpec};
use modsoc::analysis::experiment::ExperimentOptions;
use modsoc::analysis::RunBudget;
use modsoc::metrics::json::JsonValue;
use modsoc::metrics::NullSink;
use modsoc::store::sha256::Sha256;
use modsoc::store::{ResultStore, StoreKey};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("modsoc_store_gc_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn key_of(tag: &str) -> StoreKey {
    let mut h = Sha256::new();
    h.update(tag.as_bytes());
    StoreKey(h.finalize())
}

fn payload(tag: &str, bulk: usize) -> JsonValue {
    JsonValue::Object(vec![
        ("tag".to_string(), JsonValue::String(tag.to_string())),
        ("bulk".to_string(), JsonValue::String("x".repeat(bulk))),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn gc_bounds_size_and_evicts_exactly_what_it_reports(
        sizes in proptest::collection::vec(0usize..600, 1..14),
        bound_permille in 0u64..1100,
    ) {
        let dir = temp_dir("prop");
        let store = ResultStore::open(&dir).expect("open");
        let mut keys = Vec::new();
        for (i, bulk) in sizes.iter().enumerate() {
            let tag = format!("entry-{i}");
            let key = key_of(&tag);
            store.put(&key, &payload(&tag, *bulk), &NullSink).expect("put");
            keys.push(key);
        }
        let total: u64 = dir.join("objects").read_dir().expect("ls")
            .map(|e| e.expect("entry").metadata().expect("meta").len())
            .sum();
        // Bounds from 0 (evict everything) past the total (no-op).
        let max_bytes = total * bound_permille / 1000;

        let report = store.gc(max_bytes, &NullSink).expect("gc");

        // Size bound holds, and the report is internally consistent.
        prop_assert!(report.kept_bytes <= max_bytes || report.evicted.is_empty());
        prop_assert_eq!(report.scanned, keys.len());
        prop_assert_eq!(report.kept + report.evicted.len(), report.scanned);
        prop_assert_eq!(store.evictions(), report.evicted.len() as u64);

        // Survivors sweep clean; the damage ledger is empty.
        let (valid, corrupt) = store.verify_all().expect("verify");
        prop_assert_eq!(valid, report.kept);
        prop_assert_eq!(corrupt, 0);

        // A warm consumer misses exactly the evicted set and hits all
        // survivors — recompute cost equals what GC chose to drop.
        for key in &keys {
            let evicted = report.evicted.contains(&key.hex());
            prop_assert_eq!(store.get(key, &NullSink).is_none(), evicted, "{}", key.hex());
        }
        prop_assert_eq!(store.misses(), report.evicted.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn campaign_after_gc_recomputes_only_the_evicted_entries() {
    let dir = temp_dir("campaign");
    let store = Arc::new(ResultStore::open(&dir).expect("open"));
    let spec = CampaignSpec::from_json(
        r#"{"schema":1,"name":"gc","units":[{"name":"m","soc":"mini","seed":7}]}"#,
    )
    .expect("spec");
    let options = ExperimentOptions::paper_tables_1_2().with_store(Arc::clone(&store));
    let budget = RunBudget::unlimited();
    run_campaign(&spec, &options, &budget, &store, false, &NullSink).expect("cold run");
    let cold_writes = store.writes();
    assert!(cold_writes >= 3, "2 cores + monolithic cached");

    // Evict everything but the largest-that-fits suffix: keep roughly
    // half the store.
    let total: u64 = dir
        .join("objects")
        .read_dir()
        .expect("ls")
        .map(|e| e.expect("entry").metadata().expect("meta").len())
        .sum();
    let report = store.gc(total / 2, &NullSink).expect("gc");
    let evicted = report.evicted.len() as u64;
    assert!(evicted > 0, "half-size bound must evict something");
    assert!(report.kept > 0, "half-size bound must keep something");

    // Force the unit to re-run (journals are never GC'd — drop it by
    // hand) and confirm the warm run recomputes exactly the evicted
    // entries: misses == evicted, hits == kept, writes grow by evicted.
    std::fs::remove_dir_all(dir.join("journals")).expect("drop journal");
    std::fs::create_dir_all(dir.join("journals")).expect("recreate");
    let (hits_before, misses_before) = (store.hits(), store.misses());
    let report2 = run_campaign(&spec, &options, &budget, &store, false, &NullSink).expect("warm");
    assert!(report2.is_complete());
    assert_eq!(
        store.misses() - misses_before,
        evicted,
        "misses must equal evictions"
    );
    assert_eq!(
        store.hits() - hits_before,
        report.kept as u64,
        "survivors all hit"
    );
    assert_eq!(store.writes(), cold_writes + evicted, "recompute bound");
    let _ = std::fs::remove_dir_all(&dir);
}
